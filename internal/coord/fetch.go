// Package coord is the coordinator serving tier: the logic joinctl grew
// out of. It pulls per-partition synopsis bundles from N amsd nodes,
// merges each relation's partitions into the synopses of the union —
// EXACT, by linearity of the AGMS summaries, provided every node runs
// the same seed and shape options — and estimates joins with the paper's
// bounds attached. On top of the one-shot Coordinate/CoordinateChain
// calls it layers a Daemon: a per-(node, relation) versioned bundle
// cache kept warm by background refresh loops that poll the nodes' cheap
// freshness-stamp endpoint and refetch only what changed, so join
// queries are answered from memory with zero node round trips.
package coord

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"amstrack/internal/engine"
	"amstrack/internal/xrand"
)

// ErrNotFound marks a 404 from a node: the relation is not defined there.
var ErrNotFound = errors.New("relation not found")

// ErrTooLarge marks a response body that overran the fetcher's bundle
// cap. It is definitive, not retryable: the node's bundle will not
// shrink on the next attempt, and retrying a multi-megabyte download is
// exactly the bandwidth waste the cap exists to stop.
var ErrTooLarge = errors.New("bundle exceeds the response size cap")

// DefaultMaxBody caps fetched response bodies: generous enough for
// k≈10⁶ bundles with chain sections, small enough that a misconfigured
// or hostile node cannot balloon the coordinator. joinctl's
// -max-bundle-mb flag overrides it.
const DefaultMaxBody = 64 << 20

// maxBackoff caps the exponential retry backoff. Past ~30s a node is
// down, not busy: longer waits only delay the operator's answer, and an
// unclamped doubling overflows time.Duration around attempt 40.
const maxBackoff = 30 * time.Second

// Fetcher wraps an HTTP client with the coordinator's retry policy:
// every node request gets up to retries attempts, each with the client's
// full timeout budget, separated by exponential backoff with full jitter
// in [d/2, d). Transport errors and 5xx responses retry (the node may be
// restarting or mid-recovery); 4xx responses are definitive and fail
// immediately. Response bodies are capped at MaxBody.
//
// A Fetcher is safe for concurrent use by multiple goroutines except for
// the jitter RNG, which is guarded by the assumption that concurrent
// retries tolerate correlated jitter — xrand.Rand is not synchronized,
// so concurrent pauses may read torn state; the worst case is a
// non-uniform jitter draw, never a panic or an out-of-range duration,
// because the draw is re-bounded below.
type Fetcher struct {
	client  *http.Client
	retries int           // attempts per request, >= 1
	backoff time.Duration // base delay before the second attempt; 0 disables waiting
	maxBody int64         // response body cap in bytes

	sleep func(time.Duration) // test seam; nil means time.Sleep
	rng   *xrand.Rand
}

// NewFetcher builds a fetcher with the default response cap. retries
// below 1 is treated as 1; backoff 0 retries without waiting.
func NewFetcher(client *http.Client, retries int, backoff time.Duration) *Fetcher {
	if retries < 1 {
		retries = 1
	}
	return &Fetcher{client: client, retries: retries, backoff: backoff,
		maxBody: DefaultMaxBody, rng: xrand.New(jitterSeed())}
}

// SetMaxBody overrides the response body cap in bytes (<= 0 restores the
// default). Call before the fetcher is shared across goroutines.
func (fx *Fetcher) SetMaxBody(n int64) {
	if n <= 0 {
		n = DefaultMaxBody
	}
	fx.maxBody = n
}

// jitterSeed seeds each fetcher's jitter RNG independently: cryptographic
// randomness when available, otherwise the clock mixed with the PID.
// A fleet of coordinators started by the same supervisor in the same
// tick must NOT share a jitter sequence — synchronized backoff defeats
// its whole purpose of spreading the retry storm that follows a node
// restart.
func jitterSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:])
	}
	return xrand.Mix64(uint64(time.Now().UnixNano())) ^ xrand.Mix64(uint64(os.Getpid())<<1|1)
}

// pause sleeps before retry attempt (1-based, so the first retry waits
// ~backoff, the next ~2·backoff, ...). The doubling is computed by
// repeated shifting with an overflow guard and clamped to maxBackoff:
// a single unchecked `backoff << (attempt-1)` goes negative around
// attempt 40 (time.Duration is an int64 of nanoseconds), which used to
// skip the jitter draw and hand time.Sleep a negative duration — i.e. no
// wait at all, turning the late retries into a busy retry storm against
// an already-struggling node. Full jitter in [d/2, d) desynchronizes a
// fleet of coordinators hammering one recovering node.
func (fx *Fetcher) pause(attempt int) {
	if fx.backoff <= 0 {
		return
	}
	d := fx.backoff
	for i := 1; i < attempt && d < maxBackoff; i++ {
		if d > maxBackoff/2 { // next shift would pass (or overflow past) the cap
			d = maxBackoff
			break
		}
		d <<= 1
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(fx.rng.Uint64n(uint64(half)))
	}
	if fx.sleep != nil {
		fx.sleep(d)
	} else {
		time.Sleep(d)
	}
}

// RelPath escapes a relation name for the /v1/signatures/{name...}
// route. Names may contain '/' (the route is multi-segment), so each
// segment is escaped separately; anything else ('?', '#', spaces) must
// not leak into the URL as syntax.
func RelPath(rel string) string {
	segs := strings.Split(rel, "/")
	for i, s := range segs {
		segs[i] = url.PathEscape(s)
	}
	return strings.Join(segs, "/")
}

// retry drives one logical request through the retry policy. op performs
// a single attempt and reports whether its failure is worth another try.
func (fx *Fetcher) retry(op func() (retryable bool, err error)) error {
	var lastErr error
	for attempt := 0; attempt < fx.retries; attempt++ {
		if attempt > 0 {
			fx.pause(attempt)
		}
		retryable, err := op()
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("%d attempts exhausted: %w", fx.retries, lastErr)
}

// readCapped reads the whole response body, enforcing the fetcher's cap.
// The extra byte of headroom distinguishes "exactly at the cap" from
// "overran it" without trusting Content-Length.
func (fx *Fetcher) readCapped(body io.Reader) ([]byte, bool, error) {
	data, err := io.ReadAll(io.LimitReader(body, fx.maxBody+1))
	if err != nil {
		return nil, true, err
	}
	if int64(len(data)) > fx.maxBody {
		return nil, false, fmt.Errorf("%w (%d-byte cap; raise -max-bundle-mb if the bundle is legitimately this large)", ErrTooLarge, fx.maxBody)
	}
	return data, false, nil
}

// FetchBundleBytes GETs one relation's serialized synopsis bundle from
// one node, retrying transient failures per the fetcher's policy. A
// persistent failure reports how many attempts were burned; callers
// prefix the node URL so the operator knows exactly which node is down.
func (fx *Fetcher) FetchBundleBytes(node, rel string) ([]byte, error) {
	var out []byte
	err := fx.retry(func() (bool, error) {
		resp, err := fx.client.Get(node + "/v1/signatures/" + RelPath(rel))
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		body, retryable, err := fx.readCapped(resp.Body)
		if err != nil {
			return retryable, err
		}
		switch {
		case resp.StatusCode == http.StatusNotFound:
			return false, ErrNotFound
		case resp.StatusCode >= 500:
			return true, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		case resp.StatusCode != http.StatusOK:
			return false, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		out = body
		return false, nil
	})
	return out, err
}

// FetchBundle fetches and decodes one relation's bundle.
func (fx *Fetcher) FetchBundle(node, rel string) (*engine.RelationBundle, error) {
	raw, err := fx.FetchBundleBytes(node, rel)
	if err != nil {
		return nil, err
	}
	b := &engine.RelationBundle{}
	if err := b.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	return b, nil
}

// Stat is a relation's freshness stamp as reported by a node's
// GET /v1/signatures/{name}?stat=1 endpoint. An unchanged stamp
// guarantees the node's export bytes are unchanged, so a cached copy
// with the same stamp is still exact.
type Stat struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	Rows  int64  `json:"rows"`
}

// FetchStat polls one relation's freshness stamp from one node — the
// cheap probe (no synopsis serialization, a ~100-byte JSON body) the
// daemon's refresh loops issue every interval.
func (fx *Fetcher) FetchStat(node, rel string) (Stat, error) {
	var st Stat
	err := fx.retry(func() (bool, error) {
		resp, err := fx.client.Get(node + "/v1/signatures/" + RelPath(rel) + "?stat=1")
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		body, retryable, err := fx.readCapped(resp.Body)
		if err != nil {
			return retryable, err
		}
		switch {
		case resp.StatusCode == http.StatusNotFound:
			return false, ErrNotFound
		case resp.StatusCode >= 500:
			return true, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		case resp.StatusCode != http.StatusOK:
			return false, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return false, fmt.Errorf("decode stat: %w", err)
		}
		return false, nil
	})
	return st, err
}
