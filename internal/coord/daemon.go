package coord

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"amstrack/internal/engine"
	"amstrack/internal/xrand"
)

// Config shapes a Daemon.
type Config struct {
	// Nodes are the amsd base URLs holding disjoint partitions. Cache
	// merges run in THIS order, so cached bundles stay byte-identical to
	// a one-shot MergeAcross over the same list.
	Nodes []string
	// Relations are the relation names to keep cached. A node that lacks
	// one simply contributes nothing for it (same skip rule as non-strict
	// joinctl).
	Relations []string
	// Refresh is the per-node background poll interval; each loop jitters
	// its own sleeps in [Refresh/2, Refresh) so a fleet of loops does not
	// stampede one node. <= 0 means DefaultRefresh.
	Refresh time.Duration
	// MaxStaleness, when > 0, is the serving bound: a query whose answer
	// would depend on a node copy older than this is refused with 503
	// instead of silently serving arbitrarily stale synopses. 0 serves
	// forever, with the staleness reported on every response.
	MaxStaleness time.Duration
	// Fetcher performs the node requests; nil builds a default one.
	Fetcher *Fetcher
	// Logf receives refresh-loop diagnostics (node down, relation gone);
	// nil discards them.
	Logf func(format string, args ...any)

	// now is the test seam for staleness arithmetic; nil means time.Now.
	now func() time.Time
}

// DefaultRefresh is the background poll interval when Config.Refresh is
// unset: snappy enough that sub-second ingest bursts surface quickly,
// cheap because the per-interval probe is a stat, not a bundle.
const DefaultRefresh = time.Second

// nodeCopy is one node's cached partition of one relation: the raw
// export bytes, the freshness stamp that versions them, and when they
// were last CONFIRMED current (either refetched, or stat-probed equal).
type nodeCopy struct {
	raw     []byte
	stat    Stat
	freshAt time.Time
}

// relState is one relation's cache entry. merged is rebuilt from the
// copies (in node-list order) whenever any copy changes, so the query
// path reads a ready-made bundle and never merges; it is replaced, never
// mutated, so concurrent readers can hold it without locks.
type relState struct {
	copies map[string]*nodeCopy // keyed by node URL
	merged *engine.RelationBundle
	nodes  int // copies contributing to merged
}

// Daemon is the cached coordinator: background loops keep a
// per-(node, relation) bundle cache warm, queries answer from the merged
// cache with zero node round trips, and every answer carries an explicit
// staleness bound. A node loss degrades freshness, never availability —
// the last good copy keeps serving inside the staleness bound.
type Daemon struct {
	cfg Config
	fx  *Fetcher
	now func() time.Time

	mu      sync.RWMutex
	rels    map[string]*relState
	nodeErr map[string]string // last refresh error per node; "" healthy

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewDaemon validates cfg and builds the daemon with a cold cache. Call
// Sweep for a synchronous warm-up, Start for the background loops.
func NewDaemon(cfg Config) (*Daemon, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("coord: no nodes configured")
	}
	if len(cfg.Relations) == 0 {
		return nil, errors.New("coord: no relations configured")
	}
	if cfg.Refresh <= 0 {
		cfg.Refresh = DefaultRefresh
	}
	if cfg.Fetcher == nil {
		cfg.Fetcher = NewFetcher(nil, 1, 0)
	}
	if cfg.Fetcher.client == nil {
		cfg.Fetcher.client = defaultClient()
	}
	d := &Daemon{
		cfg:     cfg,
		fx:      cfg.Fetcher,
		now:     cfg.now,
		rels:    make(map[string]*relState, len(cfg.Relations)),
		nodeErr: make(map[string]string, len(cfg.Nodes)),
		stop:    make(chan struct{}),
	}
	if d.now == nil {
		d.now = time.Now
	}
	for _, rel := range cfg.Relations {
		d.rels[rel] = &relState{copies: make(map[string]*nodeCopy, len(cfg.Nodes))}
	}
	return d, nil
}

func defaultClient() *http.Client {
	return &http.Client{Timeout: 10 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Sweep refreshes every (node, relation) pair synchronously — the
// startup warm-up, and the deterministic lever the tests pull instead of
// waiting on timers. It returns the first node error it saw (queries
// still work; the error is advisory, mirrored in /healthz).
func (d *Daemon) Sweep() error {
	var first error
	for _, node := range d.cfg.Nodes {
		if err := d.sweepNode(node); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// sweepNode refreshes every relation from one node and records the
// node's health from the outcome.
func (d *Daemon) sweepNode(node string) error {
	var nodeErr error
	for _, rel := range d.cfg.Relations {
		if err := d.refreshOne(node, rel); err != nil {
			nodeErr = fmt.Errorf("relation %q: %w", rel, err)
			d.logf("coord: node %s: relation %q: %v", node, rel, err)
		}
	}
	d.mu.Lock()
	if nodeErr != nil {
		d.nodeErr[node] = nodeErr.Error()
	} else {
		d.nodeErr[node] = ""
	}
	d.mu.Unlock()
	if nodeErr != nil {
		return fmt.Errorf("node %s: %w", node, nodeErr)
	}
	return nil
}

// refreshOne is the delta-aware refresh of one (node, relation) pair:
// probe the cheap stat endpoint; an unchanged stamp just renews the
// copy's freshness, a changed one triggers the full bundle fetch, a 404
// drops the copy (the relation left that node). Fetch and node errors
// keep the last good copy — its freshAt stops advancing, so its
// staleness grows and the serving bound eventually refuses queries.
func (d *Daemon) refreshOne(node, rel string) error {
	st, err := d.fx.FetchStat(node, rel)
	if errors.Is(err, ErrNotFound) {
		d.dropCopy(node, rel)
		return nil
	}
	if err != nil {
		return err
	}
	d.mu.RLock()
	cur := d.rels[rel].copies[node]
	unchanged := cur != nil && cur.stat == st
	d.mu.RUnlock()
	if unchanged {
		d.mu.Lock()
		if c := d.rels[rel].copies[node]; c != nil && c.stat == st {
			c.freshAt = d.now()
		}
		d.mu.Unlock()
		return nil
	}
	raw, err := d.fx.FetchBundleBytes(node, rel)
	if errors.Is(err, ErrNotFound) { // dropped between stat and fetch
		d.dropCopy(node, rel)
		return nil
	}
	if err != nil {
		return err
	}
	var b engine.RelationBundle
	if err := b.UnmarshalBinary(raw); err != nil {
		return fmt.Errorf("decode bundle: %w", err)
	}
	// Stamp the copy from the BUNDLE, not the probe: ops may have landed
	// between the two requests and the bundle's own stamp is what the
	// cached bytes actually contain.
	d.mu.Lock()
	d.rels[rel].copies[node] = &nodeCopy{
		raw:     raw,
		stat:    Stat{Epoch: b.Epoch, Seq: b.Seq, Rows: b.Rows},
		freshAt: d.now(),
	}
	err = d.rebuildLocked(rel)
	d.mu.Unlock()
	return err
}

func (d *Daemon) dropCopy(node, rel string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rs := d.rels[rel]
	if _, ok := rs.copies[node]; !ok {
		return
	}
	delete(rs.copies, node)
	if err := d.rebuildLocked(rel); err != nil {
		// Unreachable in practice: the surviving copies decoded before.
		d.logf("coord: rebuild %q after drop: %v", rel, err)
	}
}

// rebuildLocked re-merges one relation's cached copies in node-list
// order into a fresh bundle. Decoding from the raw bytes every time
// keeps the copies immutable; the merged pointer is swapped atomically
// under the write lock, so in-flight queries keep their old (still
// correct, slightly staler) bundle.
func (d *Daemon) rebuildLocked(rel string) error {
	rs := d.rels[rel]
	var merged *engine.RelationBundle
	n := 0
	for _, node := range d.cfg.Nodes {
		c, ok := rs.copies[node]
		if !ok {
			continue
		}
		b := &engine.RelationBundle{}
		if err := b.UnmarshalBinary(c.raw); err != nil {
			return fmt.Errorf("node %s: decode cached bundle: %w", node, err)
		}
		n++
		if merged == nil {
			merged = b
			continue
		}
		if err := merged.Merge(b); err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
	}
	rs.merged, rs.nodes = merged, n
	return nil
}

// Start launches one background refresh loop per node. Each loop sweeps
// immediately, then polls with jittered sleeps in [Refresh/2, Refresh).
func (d *Daemon) Start() {
	for i, node := range d.cfg.Nodes {
		d.wg.Add(1)
		go d.refreshLoop(node, uint64(i))
	}
}

// Stop halts the refresh loops and waits for them. The cache keeps
// serving afterwards; Stop is the drain step of a graceful shutdown.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

func (d *Daemon) refreshLoop(node string, idx uint64) {
	defer d.wg.Done()
	// Per-loop RNG: forked off the fetcher seed and the node index so
	// loops desynchronize from each other AND from other daemons.
	rng := xrand.New(jitterSeed() ^ xrand.Mix64(idx))
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-timer.C:
		}
		_ = d.sweepNode(node) // recorded in nodeErr, surfaced by /healthz
		half := d.cfg.Refresh / 2
		timer.Reset(half + time.Duration(rng.Uint64n(uint64(half)+1)))
	}
}

// RelFreshness is one node's contribution to a served relation: how old
// its cached copy is and which stamp it carries.
type RelFreshness struct {
	Node  string `json:"node"`
	AgeMS int64  `json:"age_ms"`
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
}

// errRelUnavailable distinguishes "no node has it" (404) from staleness.
var errRelUnavailable = errors.New("no cached copy from any node")

// errTooStale is the serving-bound refusal (503).
var errTooStale = errors.New("cache staleness exceeds the serving bound")

// lookup returns a relation's merged bundle plus its staleness evidence:
// per-node copy ages and the overall staleness (the OLDEST contributing
// copy — the bound on how much ingest the answer can be missing).
// Honors the MaxStaleness serving bound.
func (d *Daemon) lookup(rel string) (*engine.RelationBundle, []RelFreshness, time.Duration, error) {
	now := d.now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	rs, ok := d.rels[rel]
	if !ok || rs.merged == nil {
		return nil, nil, 0, fmt.Errorf("relation %q: %w", rel, errRelUnavailable)
	}
	var staleness time.Duration
	fresh := make([]RelFreshness, 0, len(rs.copies))
	for _, node := range d.cfg.Nodes {
		c, ok := rs.copies[node]
		if !ok {
			continue
		}
		age := now.Sub(c.freshAt)
		if age < 0 {
			age = 0
		}
		if age > staleness {
			staleness = age
		}
		fresh = append(fresh, RelFreshness{Node: node, AgeMS: age.Milliseconds(),
			Seq: c.stat.Seq, Epoch: c.stat.Epoch})
	}
	if d.cfg.MaxStaleness > 0 && staleness > d.cfg.MaxStaleness {
		return nil, fresh, staleness, fmt.Errorf(
			"relation %q: %w (%v old, bound %v)", rel, errTooStale, staleness, d.cfg.MaxStaleness)
	}
	return rs.merged, fresh, staleness, nil
}
