package coord

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amstrack/internal/amsd"
	"amstrack/internal/engine"
)

// countingNode wraps an amsd handler and counts signature traffic, so
// the tests can assert the refresh loop's delta-awareness: stat probes
// are cheap and constant, full bundle fetches happen ONLY on change.
type countingNode struct {
	inner       http.Handler
	statCalls   atomic.Int64
	bundleCalls atomic.Int64
}

func (c *countingNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/signatures/") && r.Method == http.MethodGet {
		if r.URL.Query().Get("stat") != "" {
			c.statCalls.Add(1)
		} else {
			c.bundleCalls.Add(1)
		}
	}
	c.inner.ServeHTTP(w, r)
}

// fakeClock is the daemon's time seam: staleness arithmetic follows this
// clock, so the tests age the cache without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// daemonHarness is a two-node daemon over live amsd engines.
type daemonHarness struct {
	engines []*engine.Engine
	servers []*httptest.Server
	counts  []*countingNode
	urls    []string
	clock   *fakeClock
	d       *Daemon
	ts      *httptest.Server // the daemon's own HTTP surface
}

func newDaemonHarness(t *testing.T, opts engine.Options, relations []string, maxStale time.Duration) *daemonHarness {
	t.Helper()
	h := &daemonHarness{clock: newFakeClock()}
	for i := 0; i < 2; i++ {
		eng, err := engine.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range relations {
			if _, err := eng.Define(rel); err != nil {
				t.Fatal(err)
			}
		}
		cn := &countingNode{inner: amsd.NewServer(eng)}
		ts := httptest.NewServer(cn)
		t.Cleanup(ts.Close)
		h.engines = append(h.engines, eng)
		h.servers = append(h.servers, ts)
		h.counts = append(h.counts, cn)
		h.urls = append(h.urls, ts.URL)
	}
	d, err := NewDaemon(Config{
		Nodes:        h.urls,
		Relations:    relations,
		MaxStaleness: maxStale,
		Fetcher:      testFetcher(),
		now:          h.clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.d = d
	h.ts = httptest.NewServer(d.Handler())
	t.Cleanup(h.ts.Close)
	return h
}

func (h *daemonHarness) getJSON(t *testing.T, path string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(h.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		t.Fatalf("GET %s: status %d (want %d): %s", path, resp.StatusCode, wantStatus, eb.Error)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
}

func ingestSome(t *testing.T, e *engine.Engine, rel string, vals []uint64) {
	t.Helper()
	r, err := e.Get(rel)
	if err != nil {
		t.Fatal(err)
	}
	r.InsertBatch(vals)
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonCachedBitIdentical is the serving-tier acceptance path, run
// under BOTH ingest modes: the daemon's cached /v1/join answer equals a
// fresh one-shot pull in every digit, and the cached merged bundle is
// byte-identical to MergeAcross pulling live — the cache serves the
// exact synopses, not an approximation of them.
func TestDaemonCachedBitIdentical(t *testing.T) {
	for _, mode := range []engine.IngestMode{engine.IngestLocked, engine.IngestAbsorber} {
		t.Run(mode.String(), func(t *testing.T) {
			opts := nodeOpts()
			opts.IngestMode = mode
			h := newDaemonHarness(t, opts, []string{"orders", "lineitems"}, 0)
			for i, e := range h.engines {
				base := uint64(i * 50000)
				vals := make([]uint64, 4000)
				for j := range vals {
					vals[j] = base + uint64(j%512)
				}
				ingestSome(t, e, "orders", vals)
				ingestSome(t, e, "lineitems", vals[:2000])
			}
			if err := h.d.Sweep(); err != nil {
				t.Fatal(err)
			}

			var cached JoinBody
			h.getJSON(t, "/v1/join?f=orders&g=lineitems", http.StatusOK, &cached)

			fresh, err := Coordinate(testFetcher(), h.urls, "orders", "lineitems", true, nil)
			if err != nil {
				t.Fatal(err)
			}
			if cached.Estimate != fresh.Estimate || cached.Sigma != fresh.Sigma ||
				cached.Fact11 != fresh.Fact11 || cached.SJF != fresh.SJF || cached.SJG != fresh.SJG {
				t.Fatalf("cached answer %+v != fresh pull %+v", cached, fresh)
			}
			if cached.RowsF != 8000 || cached.RowsG != 4000 || cached.Nodes != 2 {
				t.Fatalf("rows/nodes = %+v", cached)
			}
			if cached.StalenessMS != 0 || len(cached.Freshness) != 4 {
				t.Fatalf("staleness/freshness = %d / %d entries", cached.StalenessMS, len(cached.Freshness))
			}

			// The cached merged bundle bytes vs a live MergeAcross pull.
			mergedCached, _, _, err := h.d.lookup("orders")
			if err != nil {
				t.Fatal(err)
			}
			cachedBlob, err := mergedCached.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			mergedLive, _, err := MergeAcross(testFetcher(), h.urls, "orders", true, nil)
			if err != nil {
				t.Fatal(err)
			}
			liveBlob, err := mergedLive.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cachedBlob, liveBlob) {
				t.Fatal("cached merged bundle differs from a live pull")
			}
		})
	}
}

// TestDaemonStatSkip pins the delta-aware refresh: sweeps against an
// unchanged node cost one stat probe per (node, relation) and ZERO
// bundle fetches; an ingest triggers exactly the changed relation's
// refetch on the next sweep, and the cached answer follows it.
func TestDaemonStatSkip(t *testing.T) {
	h := newDaemonHarness(t, nodeOpts(), []string{"orders", "lineitems"}, 0)
	for _, e := range h.engines {
		ingestSome(t, e, "orders", []uint64{1, 2, 3})
		ingestSome(t, e, "lineitems", []uint64{2, 3, 4})
	}
	if err := h.d.Sweep(); err != nil {
		t.Fatal(err)
	}
	if got := h.counts[0].bundleCalls.Load(); got != 2 {
		t.Fatalf("first sweep fetched %d bundles from node 0, want 2", got)
	}

	// Quiet sweeps: stats only, bundles untouched.
	for i := 0; i < 3; i++ {
		if err := h.d.Sweep(); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.counts[0].bundleCalls.Load(); got != 2 {
		t.Fatalf("quiet sweeps refetched bundles (count %d, want still 2)", got)
	}
	if got := h.counts[0].statCalls.Load(); got != 8 { // 4 sweeps x 2 relations
		t.Fatalf("stat probes = %d, want 8", got)
	}

	// Ingest into ONE relation on ONE node: the next sweep refetches
	// exactly that bundle, and the served rows move.
	var before JoinBody
	h.getJSON(t, "/v1/join?f=orders&g=lineitems", http.StatusOK, &before)
	ingestSome(t, h.engines[0], "orders", []uint64{7, 8})
	if err := h.d.Sweep(); err != nil {
		t.Fatal(err)
	}
	if got := h.counts[0].bundleCalls.Load(); got != 3 {
		t.Fatalf("post-ingest sweep fetched %d bundles from node 0, want 3 (one delta)", got)
	}
	if got := h.counts[1].bundleCalls.Load(); got != 2 {
		t.Fatalf("post-ingest sweep refetched from the unchanged node (count %d, want 2)", got)
	}
	var after JoinBody
	h.getJSON(t, "/v1/join?f=orders&g=lineitems", http.StatusOK, &after)
	if after.RowsF != before.RowsF+2 {
		t.Fatalf("served rows_f = %d, want %d", after.RowsF, before.RowsF+2)
	}
}

// TestDaemonNodeLossServesStale: killing a node must NOT take the
// coordinator down — the last good copy keeps serving, the answer's
// staleness bound grows with the fake clock, and /healthz reports
// degraded naming the dead node. When the relation ages past
// MaxStaleness the daemon refuses with 503 rather than serve an answer
// whose error is no longer bounded.
func TestDaemonNodeLossServesStale(t *testing.T) {
	const maxStale = 10 * time.Second
	h := newDaemonHarness(t, nodeOpts(), []string{"orders"}, maxStale)
	for _, e := range h.engines {
		ingestSome(t, e, "orders", []uint64{1, 2, 3, 4, 5})
	}
	if err := h.d.Sweep(); err != nil {
		t.Fatal(err)
	}
	var healthy HealthzBody
	h.getJSON(t, "/healthz", http.StatusOK, &healthy)
	if healthy.Status != "ok" {
		t.Fatalf("healthz before node loss: %+v", healthy)
	}

	h.servers[1].Close() // node 1 dies
	h.clock.advance(3 * time.Second)
	if err := h.d.Sweep(); err == nil {
		t.Fatal("sweep against a dead node reported no error")
	}

	// Still serving: node 0's copy is fresh, node 1's is 3s old, so the
	// answer is correct-as-of-3s-ago and says so.
	var res JoinBody
	h.getJSON(t, "/v1/join?f=orders&g=orders", http.StatusOK, &res)
	if res.RowsF != 10 {
		t.Fatalf("rows after node loss = %d, want 10 (last good copy)", res.RowsF)
	}
	if res.StalenessMS != 3000 {
		t.Fatalf("staleness_ms = %d, want 3000", res.StalenessMS)
	}
	var degraded HealthzBody
	h.getJSON(t, "/healthz", http.StatusOK, &degraded)
	if degraded.Status != "degraded" {
		t.Fatalf("healthz after node loss: %+v", degraded)
	}
	if degraded.Nodes[1].OK || degraded.Nodes[1].Error == "" {
		t.Fatalf("dead node not reported: %+v", degraded.Nodes)
	}
	if degraded.Relations["orders"] != 3000 {
		t.Fatalf("healthz staleness = %d, want 3000", degraded.Relations["orders"])
	}

	// Age past the bound: refuse rather than serve unbounded staleness.
	h.clock.advance(8 * time.Second)
	var eb errorBody
	resp, err := http.Get(h.ts.URL + "/v1/join?f=orders&g=orders")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("past-bound query: status %d, want 503 (%s)", resp.StatusCode, eb.Error)
	}
	for _, want := range []string{"staleness", "10s"} {
		if !strings.Contains(eb.Error, want) {
			t.Fatalf("503 body %q does not mention %q", eb.Error, want)
		}
	}
}

// TestDaemonRelationDrop: a relation deleted from a node falls out of
// that node's cache on the next sweep (the 404 is a drop, not an error),
// and the merged answer re-forms from the remaining copies.
func TestDaemonRelationDrop(t *testing.T) {
	h := newDaemonHarness(t, nodeOpts(), []string{"orders"}, 0)
	for _, e := range h.engines {
		ingestSome(t, e, "orders", []uint64{1, 2, 3})
	}
	if err := h.d.Sweep(); err != nil {
		t.Fatal(err)
	}
	if err := h.engines[1].Drop("orders"); err != nil {
		t.Fatal(err)
	}
	if err := h.d.Sweep(); err != nil {
		t.Fatalf("sweep after relation drop: %v (a 404 is a drop, not a failure)", err)
	}
	var res JoinBody
	h.getJSON(t, "/v1/join?f=orders&g=orders", http.StatusOK, &res)
	if res.RowsF != 3 || res.Nodes != 1 {
		t.Fatalf("after drop: rows=%d nodes=%d, want 3/1", res.RowsF, res.Nodes)
	}

	// Dropped everywhere: the relation becomes a 404 at the daemon too.
	if err := h.engines[0].Drop("orders"); err != nil {
		t.Fatal(err)
	}
	if err := h.d.Sweep(); err != nil {
		t.Fatal(err)
	}
	h.getJSON(t, "/v1/join?f=orders&g=orders", http.StatusNotFound, nil)
}

// TestDaemonChainAndPairs: the chain endpoint and the planning matrix
// answer from the same cache, bit-identical to their fresh-pull
// counterparts.
func TestDaemonChainAndPairs(t *testing.T) {
	data := makeChainData(t)
	clock := newFakeClock()
	urls := make([]string, 2)
	for i := range urls {
		eng, err := engine.New(chainNodeOpts(engine.IngestAbsorber))
		if err != nil {
			t.Fatal(err)
		}
		defineChainRels(t, eng)
		data.ingestPart(t, eng, i, 2)
		ts := httptest.NewServer(amsd.NewServer(eng))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	d, err := NewDaemon(Config{
		Nodes:     urls,
		Relations: []string{"forders", "glineitem", "hparts"},
		Fetcher:   testFetcher(),
		now:       clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sweep(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)

	body, err := json.Marshal(ChainJoinRequest{F: "forders", AttrA: "a", G: "glineitem", AttrB: "b", H: "hparts"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/join/chain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var chain ChainJoinBody
	if err := json.NewDecoder(resp.Body).Decode(&chain); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chain status %d", resp.StatusCode)
	}
	fresh, err := CoordinateChain(testFetcher(), urls, "forders", "a", "glineitem", "b", "hparts", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Estimate != fresh.Estimate || chain.Sigma != fresh.Sigma || chain.Upper != fresh.Upper ||
		chain.SJF != fresh.SJF || chain.SJG != fresh.SJG || chain.SJH != fresh.SJH {
		t.Fatalf("cached chain %+v != fresh %+v", chain, fresh)
	}
	if chain.Nodes != 2 || chain.StalenessMS != 0 {
		t.Fatalf("chain nodes/staleness = %d/%d", chain.Nodes, chain.StalenessMS)
	}

	var pairs PairsBody
	presp, err := http.Get(ts.URL + "/v1/pairs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(presp.Body).Decode(&pairs); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if len(pairs.Pairs) != 3 { // C(3,2) over the cached relations
		t.Fatalf("pairs matrix has %d entries, want 3", len(pairs.Pairs))
	}
	for _, p := range pairs.Pairs {
		freshPair, err := Coordinate(testFetcher(), urls, p.F, p.G, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.Estimate != freshPair.Estimate {
			t.Fatalf("pair %s/%s cached %v != fresh %v", p.F, p.G, p.Estimate, freshPair.Estimate)
		}
	}
}

// TestDaemonBackgroundRefresh drives the REAL timer loops (no Sweep):
// Start must warm the cache and then pick up an ingest within a few
// jittered refresh intervals.
func TestDaemonBackgroundRefresh(t *testing.T) {
	h := newDaemonHarnessRefresh(t, 10*time.Millisecond)
	for _, e := range h.engines {
		ingestSome(t, e, "orders", []uint64{1, 2, 3})
	}
	h.d.Start()
	defer h.d.Stop()

	waitFor := func(wantRows int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(h.ts.URL + "/v1/join?f=orders&g=orders")
			if err != nil {
				t.Fatal(err)
			}
			var res JoinBody
			ok := resp.StatusCode == http.StatusOK &&
				json.NewDecoder(resp.Body).Decode(&res) == nil && res.RowsF == wantRows
			resp.Body.Close()
			if ok {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("background refresh never served rows=%d", wantRows)
	}
	waitFor(6)
	ingestSome(t, h.engines[0], "orders", []uint64{9, 10})
	waitFor(8)
}

// newDaemonHarnessRefresh builds a harness on the real clock with a fast
// refresh interval, for the background-loop test.
func newDaemonHarnessRefresh(t *testing.T, refresh time.Duration) *daemonHarness {
	t.Helper()
	h := &daemonHarness{}
	for i := 0; i < 2; i++ {
		eng, err := engine.New(nodeOpts())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Define("orders"); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(amsd.NewServer(eng))
		t.Cleanup(ts.Close)
		h.engines = append(h.engines, eng)
		h.servers = append(h.servers, ts)
		h.urls = append(h.urls, ts.URL)
	}
	d, err := NewDaemon(Config{
		Nodes:     h.urls,
		Relations: []string{"orders"},
		Refresh:   refresh,
		Fetcher:   testFetcher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.d = d
	h.ts = httptest.NewServer(d.Handler())
	t.Cleanup(h.ts.Close)
	return h
}
