package coord

// The daemon's HTTP surface. Every estimate endpoint answers from the
// merged cache — zero node round trips on the query path — and carries
// its staleness evidence: staleness_ms is the age of the OLDEST node
// copy the answer depends on (the bound on how much ingest it can be
// missing), freshness itemizes each contributing node. /healthz goes
// degraded when any refresh loop is failing or any relation has aged
// past the serving bound.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// JoinBody is the GET /v1/join response: the coordinated estimate with
// the paper's bounds, plus the cache's staleness evidence.
type JoinBody struct {
	F           string         `json:"f"`
	G           string         `json:"g"`
	Nodes       int            `json:"nodes"`
	RowsF       int64          `json:"rows_f"`
	RowsG       int64          `json:"rows_g"`
	Estimate    float64        `json:"estimate"`
	Sigma       float64        `json:"sigma"`
	Fact11      float64        `json:"fact11"`
	SJF         float64        `json:"sjf"`
	SJG         float64        `json:"sjg"`
	K           int            `json:"k"`
	StalenessMS int64          `json:"staleness_ms"`
	Freshness   []RelFreshness `json:"freshness"`
}

// ChainJoinRequest is the POST /v1/join/chain body — same shape as
// amsd's, minus the remote_* bundle fields (the daemon's cache IS the
// remote merge).
type ChainJoinRequest struct {
	F     string `json:"f"`
	AttrA string `json:"attr_a"`
	G     string `json:"g"`
	AttrB string `json:"attr_b"`
	H     string `json:"h"`
}

// ChainJoinBody is its response.
type ChainJoinBody struct {
	F           string         `json:"f"`
	AttrA       string         `json:"attr_a"`
	G           string         `json:"g"`
	AttrB       string         `json:"attr_b"`
	H           string         `json:"h"`
	Nodes       int            `json:"nodes"`
	RowsF       int64          `json:"rows_f"`
	RowsG       int64          `json:"rows_g"`
	RowsH       int64          `json:"rows_h"`
	Estimate    float64        `json:"estimate"`
	Sigma       float64        `json:"sigma"`
	Upper       float64        `json:"upper"`
	SJF         float64        `json:"sjf"`
	SJG         float64        `json:"sjg"`
	SJH         float64        `json:"sjh"`
	K           int            `json:"k"`
	StalenessMS int64          `json:"staleness_ms"`
	Freshness   []RelFreshness `json:"freshness"`
}

// PairsBody is the GET /v1/pairs response: the planning matrix over
// every cached relation pair.
type PairsBody struct {
	Pairs []JoinBody `json:"pairs"`
}

// NodeHealth is one node's entry in /healthz.
type NodeHealth struct {
	Node string `json:"node"`
	OK   bool   `json:"ok"`
	// Error is the node's last refresh failure; absent while healthy.
	Error string `json:"error,omitempty"`
}

// HealthzBody is the GET /healthz response.
type HealthzBody struct {
	Status string `json:"status"` // "ok" or "degraded"
	Nodes  []NodeHealth `json:"nodes"`
	// Relations maps each configured relation to the age of its oldest
	// contributing copy; a relation no node serves reports -1.
	Relations map[string]int64 `json:"relations_staleness_ms"`
	// MaxStalenessMS echoes the serving bound (0 = serve forever).
	MaxStalenessMS int64 `json:"max_staleness_ms"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusForLookup maps cache-lookup failures: a relation no node serves
// is 404, one aged past the serving bound is 503 (retryable once a
// refresh lands), anything else 500.
func statusForLookup(err error) int {
	switch {
	case errors.Is(err, errRelUnavailable):
		return http.StatusNotFound
	case errors.Is(err, errTooStale):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Handler returns the daemon's HTTP surface.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /v1/join", d.handleJoin)
	mux.HandleFunc("POST /v1/join/chain", d.handleJoinChain)
	mux.HandleFunc("GET /v1/pairs", d.handlePairs)
	return mux
}

// joinFromCache builds one pair's JoinBody from the cache.
func (d *Daemon) joinFromCache(f, g string) (*JoinBody, error) {
	bf, frF, stF, err := d.lookup(f)
	if err != nil {
		return nil, err
	}
	bg, frG, stG, err := d.lookup(g)
	if err != nil {
		return nil, err
	}
	res, err := pairEstimate(f, g, bf, bg, maxNodes(frF, frG))
	if err != nil {
		return nil, err
	}
	return &JoinBody{
		F: f, G: g, Nodes: res.Nodes,
		RowsF: res.RowsF, RowsG: res.RowsG,
		Estimate: res.Estimate, Sigma: res.Sigma, Fact11: res.Fact11,
		SJF: res.SJF, SJG: res.SJG, K: res.K,
		StalenessMS: max(stF, stG).Milliseconds(),
		Freshness:   append(frF, frG...),
	}, nil
}

func maxNodes(a, b []RelFreshness) int { return max(len(a), len(b)) }

func (d *Daemon) handleJoin(w http.ResponseWriter, r *http.Request) {
	f, g := r.URL.Query().Get("f"), r.URL.Query().Get("g")
	if f == "" || g == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?f or ?g parameter"))
		return
	}
	body, err := d.joinFromCache(f, g)
	if err != nil {
		writeErr(w, statusForLookup(err), err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (d *Daemon) handleJoinChain(w http.ResponseWriter, r *http.Request) {
	var req ChainJoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.F == "" || req.AttrA == "" || req.G == "" || req.AttrB == "" || req.H == "" {
		writeErr(w, http.StatusBadRequest, errors.New("f, attr_a, g, attr_b, and h are all required"))
		return
	}
	bf, frF, stF, err := d.lookup(req.F)
	if err != nil {
		writeErr(w, statusForLookup(err), err)
		return
	}
	bg, frG, stG, err := d.lookup(req.G)
	if err != nil {
		writeErr(w, statusForLookup(err), err)
		return
	}
	bh, frH, stH, err := d.lookup(req.H)
	if err != nil {
		writeErr(w, statusForLookup(err), err)
		return
	}
	nodes := max(len(frF), max(len(frG), len(frH)))
	res, err := chainEstimate(req.F, req.AttrA, req.G, req.AttrB, req.H, bf, bg, bh, nodes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ChainJoinBody{
		F: res.F, AttrA: res.AttrA, G: res.G, AttrB: res.AttrB, H: res.H,
		Nodes: res.Nodes,
		RowsF: res.RowsF, RowsG: res.RowsG, RowsH: res.RowsH,
		Estimate: res.Estimate, Sigma: res.Sigma, Upper: res.Upper,
		SJF: res.SJF, SJG: res.SJG, SJH: res.SJH, K: res.K,
		StalenessMS: max(stF, max(stG, stH)).Milliseconds(),
		Freshness:   append(append(frF, frG...), frH...),
	})
}

// handlePairs walks every cached relation pair in configuration order.
// Pairs whose relations are unavailable are skipped (a planning matrix
// over what IS servable); a pair past the staleness bound fails the
// whole matrix, because a partial matrix silently missing the stalest
// relations is exactly the kind of answer the bound forbids.
func (d *Daemon) handlePairs(w http.ResponseWriter, _ *http.Request) {
	out := PairsBody{Pairs: []JoinBody{}}
	for i, f := range d.cfg.Relations {
		for _, g := range d.cfg.Relations[i+1:] {
			body, err := d.joinFromCache(f, g)
			if errors.Is(err, errRelUnavailable) {
				continue
			}
			if err != nil {
				writeErr(w, statusForLookup(err), err)
				return
			}
			out.Pairs = append(out.Pairs, *body)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	now := d.now()
	body := HealthzBody{
		Status:         "ok",
		Relations:      make(map[string]int64, len(d.cfg.Relations)),
		MaxStalenessMS: d.cfg.MaxStaleness.Milliseconds(),
	}
	d.mu.RLock()
	for _, node := range d.cfg.Nodes {
		nh := NodeHealth{Node: node, OK: d.nodeErr[node] == "", Error: d.nodeErr[node]}
		if !nh.OK {
			body.Status = "degraded"
		}
		body.Nodes = append(body.Nodes, nh)
	}
	for _, rel := range d.cfg.Relations {
		rs := d.rels[rel]
		if rs.merged == nil {
			body.Relations[rel] = -1
			body.Status = "degraded"
			continue
		}
		var staleness time.Duration
		for _, c := range rs.copies {
			if age := now.Sub(c.freshAt); age > staleness {
				staleness = age
			}
		}
		body.Relations[rel] = staleness.Milliseconds()
		if d.cfg.MaxStaleness > 0 && staleness > d.cfg.MaxStaleness {
			body.Status = "degraded"
		}
	}
	d.mu.RUnlock()
	writeJSON(w, http.StatusOK, body)
}
