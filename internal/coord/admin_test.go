package coord

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"amstrack/internal/amsd"
	"amstrack/internal/engine"
)

// adminNode spins up a real amsd server over a fresh engine — the admin
// verbs are exercised against the actual HTTP surface, not a mock, so a
// route or status-code drift between the packages fails here.
func adminNode(t *testing.T) (*engine.Engine, string) {
	t.Helper()
	eng, err := engine.New(nodeOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(amsd.NewServer(eng))
	t.Cleanup(srv.Close)
	return eng, srv.URL
}

func TestAdminListAndSchema(t *testing.T) {
	eng, node := adminNode(t)
	define(t, eng, "orders", "parts")
	if _, err := eng.DefineSchema("wide", engine.Schema{
		Attrs: []string{"a", "b"}, EndA: []string{"b"},
	}); err != nil {
		t.Fatal(err)
	}

	fx := NewFetcher(&http.Client{}, 1, 0)
	names, err := fx.ListRelations(node)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("relations = %v, want 3", names)
	}

	sc, err := fx.FetchSchema(node, "wide")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Relation != "wide" || len(sc.Attrs) != 2 || len(sc.ChainA) != 1 {
		t.Fatalf("schema = %+v", sc)
	}
	if _, err := fx.FetchSchema(node, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing schema err = %v, want ErrNotFound", err)
	}
}

// TestAdminMoveRelation drives the rebalance primitive end to end:
// export from the source, import onto an empty destination, merge a
// second bundle in, delete the source — and the destination's bundle
// bytes must equal a single engine that saw both partitions.
func TestAdminMoveRelation(t *testing.T) {
	src, srcURL := adminNode(t)
	_, dstURL := adminNode(t)
	mirror, err := engine.New(nodeOpts())
	if err != nil {
		t.Fatal(err)
	}
	define(t, src, "orders")
	define(t, mirror, "orders")

	r, _ := src.Get("orders")
	m, _ := mirror.Get("orders")
	part1 := []uint64{1, 2, 3, 4, 5}
	part2 := []uint64{6, 7, 8}
	r.InsertBatch(part1)
	m.InsertBatch(part1)
	m.InsertBatch(part2)

	fx := NewFetcher(&http.Client{}, 2, time.Millisecond)
	fx.sleep = func(time.Duration) {}

	b1, err := fx.FetchBundleBytes(srcURL, "orders")
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.ImportBundleBytes(dstURL, "orders", b1); err != nil {
		t.Fatalf("import: %v", err)
	}
	// A second import of the same name must surface the 409, not hide it.
	if err := fx.ImportBundleBytes(dstURL, "orders", b1); err == nil {
		t.Fatal("duplicate import did not error")
	}

	r.InsertBatch(part2)
	b2, err := fx.FetchBundleBytes(srcURL, "orders")
	if err != nil {
		t.Fatal(err)
	}
	// Merging the full second export would double-count part1; merge a
	// delta engine instead — build it the way a drain would: a fresh
	// single-partition bundle of just the new rows.
	_ = b2
	delta, err := engine.New(nodeOpts())
	if err != nil {
		t.Fatal(err)
	}
	define(t, delta, "orders")
	d, _ := delta.Get("orders")
	d.InsertBatch(part2)
	db, err := delta.ExportRelation("orders")
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.MergeBundleBytes(dstURL, "orders", db); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := fx.MergeBundleBytes(dstURL, "ghost", db); !errors.Is(err, ErrNotFound) {
		t.Fatalf("merge into missing relation err = %v, want ErrNotFound", err)
	}

	if err := fx.DeleteRelation(srcURL, "orders"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// Idempotent: deleting again (already gone, 404) still succeeds.
	if err := fx.DeleteRelation(srcURL, "orders"); err != nil {
		t.Fatalf("repeat delete: %v", err)
	}
	if _, err := fx.FetchBundleBytes(srcURL, "orders"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("source still serves the relation: %v", err)
	}

	got, err := fx.FetchBundleBytes(dstURL, "orders")
	if err != nil {
		t.Fatal(err)
	}
	want, err := mirror.ExportRelation("orders")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("moved relation's bundle differs from the single-engine mirror")
	}
}

// TestMergeNeverRetries pins the non-retryability contract: a transport
// error or 5xx mid-merge must NOT trigger a second PUT — the fetcher
// cannot know whether the first one applied, and a double merge corrupts
// linear synopses silently.
func TestMergeNeverRetries(t *testing.T) {
	var calls int
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		calls++
		http.Error(w, "mid-merge crash", http.StatusInternalServerError)
	}))
	t.Cleanup(node.Close)

	fx := NewFetcher(&http.Client{}, 5, time.Millisecond)
	fx.sleep = func(time.Duration) {}
	if err := fx.MergeBundleBytes(node.URL, "orders", []byte("bundle")); err == nil {
		t.Fatal("5xx merge did not error")
	}
	if calls != 1 {
		t.Fatalf("merge sent %d times, want exactly 1 (retry risks double-apply)", calls)
	}

	// Import, by contrast, DOES retry 5xx: its duplicate failure mode is
	// a loud 409, not silent corruption.
	calls = 0
	if err := fx.ImportBundleBytes(node.URL, "orders", []byte("bundle")); err == nil {
		t.Fatal("import against a dead node did not error")
	}
	if calls != 5 {
		t.Fatalf("import attempts = %d, want the full retry budget of 5", calls)
	}

	// Delete retries too, and a 404 counts as done.
	calls = 0
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		calls++
		http.Error(w, `{"error":"unknown relation"}`, http.StatusNotFound)
	}))
	t.Cleanup(gone.Close)
	if err := fx.DeleteRelation(gone.URL, "orders"); err != nil {
		t.Fatalf("404 delete = %v, want success", err)
	}
	if calls != 1 {
		t.Fatalf("404 delete burned %d attempts, want 1", calls)
	}
}
