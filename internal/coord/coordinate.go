package coord

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"amstrack/internal/engine"
	"amstrack/internal/exact"
	"amstrack/internal/join"
)

// SplitNodes parses a comma-separated node-URL list, dropping empty
// entries and trailing slashes so "http://a:7600/," round-trips.
func SplitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimRight(strings.TrimSpace(n), "/")
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Result is one coordinated cross-node join estimate.
type Result struct {
	F, G         string
	Nodes        int   // nodes that contributed at least one partition
	RowsF, RowsG int64 // merged tuple counts
	Estimate     float64
	Sigma        float64 // Lemma 4.4 one-σ bound
	Fact11       float64 // Fact 1.1 upper bound
	SJF, SJG     float64 // merged self-join estimates behind the bounds
	K            int     // signature memory words (both relations)
}

// Print renders the human-readable report joinctl emits.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "join %s ⋈ %s across %d node(s)\n", r.F, r.G, r.Nodes)
	fmt.Fprintf(w, "  rows           : %s=%d  %s=%d\n", r.F, r.RowsF, r.G, r.RowsG)
	fmt.Fprintf(w, "  estimate       : %.6g\n", r.Estimate)
	fmt.Fprintf(w, "  ±σ (Lemma 4.4) : %.6g  (k=%d)\n", r.Sigma, r.K)
	fmt.Fprintf(w, "  Fact 1.1 bound : %.6g\n", r.Fact11)
	fmt.Fprintf(w, "  SJ estimates   : %s=%.6g  %s=%.6g\n", r.F, r.SJF, r.G, r.SJG)
}

// pairEstimate computes the join estimate and bounds from two merged
// bundles — shared by the one-shot Coordinate and the daemon's cached
// query path, so both answer bit-identically from the same synopses.
func pairEstimate(f, g string, bf, bg *engine.RelationBundle, nodes int) (*Result, error) {
	est, err := join.EstimateJoin(bf.Sig, bg.Sig)
	if err != nil {
		return nil, err
	}
	sjF, sjG := bf.SelfJoinEstimate(), bg.SelfJoinEstimate()
	k := bf.Sig.MemoryWords()
	return &Result{
		F: f, G: g, Nodes: nodes,
		RowsF: bf.Rows, RowsG: bg.Rows,
		Estimate: est,
		Sigma:    join.ErrorBound(sjF, sjG, k),
		Fact11:   exact.JoinUpperBound(int64(sjF), int64(sjG)),
		SJF:      sjF, SJG: sjG,
		K: k,
	}, nil
}

// Coordinate pulls both relations' bundles from every node, merges the
// partitions, and estimates the join with bounds. warnW receives skip
// warnings in non-strict mode.
func Coordinate(fx *Fetcher, nodes []string, f, g string, strict bool, warnW io.Writer) (*Result, error) {
	if len(nodes) == 0 {
		return nil, errors.New("no nodes given")
	}
	bf, nf, err := MergeAcross(fx, nodes, f, strict, warnW)
	if err != nil {
		return nil, err
	}
	bg, ng, err := MergeAcross(fx, nodes, g, strict, warnW)
	if err != nil {
		return nil, err
	}
	return pairEstimate(f, g, bf, bg, max(nf, ng))
}

// ChainResult is one coordinated three-way chain estimate.
type ChainResult struct {
	F, AttrA, G, AttrB, H string
	Nodes                 int // nodes that contributed at least one partition
	RowsF, RowsG, RowsH   int64
	Estimate              float64
	Sigma                 float64 // variance-envelope one-σ bound
	Upper                 float64 // Cauchy–Schwarz upper bound
	SJF, SJG, SJH         float64 // merged chain self-join estimates
	K                     int     // chain signature words
}

// Print renders the human-readable chain report joinctl emits.
func (r *ChainResult) Print(w io.Writer) {
	fmt.Fprintf(w, "chain %s ⋈%s %s ⋈%s %s across %d node(s)\n", r.F, r.AttrA, r.G, r.AttrB, r.H, r.Nodes)
	fmt.Fprintf(w, "  rows           : %s=%d  %s=%d  %s=%d\n", r.F, r.RowsF, r.G, r.RowsG, r.H, r.RowsH)
	fmt.Fprintf(w, "  estimate       : %.6g\n", r.Estimate)
	fmt.Fprintf(w, "  ±σ (envelope)  : %.6g  (k=%d)\n", r.Sigma, r.K)
	fmt.Fprintf(w, "  C–S bound      : %.6g\n", r.Upper)
	fmt.Fprintf(w, "  SJ estimates   : %s=%.6g  %s=%.6g  %s=%.6g\n", r.F, r.SJF, r.G, r.SJG, r.H, r.SJH)
}

// chainEstimate computes the chain estimate and bounds from three merged
// bundles — shared by CoordinateChain and the daemon.
func chainEstimate(f, attrA, g, attrB, h string, bf, bg, bh *engine.RelationBundle, nodes int) (*ChainResult, error) {
	ce, err := engine.EstimateChainBundles(bf, attrA, bg, attrB, bh)
	if err != nil {
		return nil, fmt.Errorf("%w (check that every node runs equal -seed, shape, and schema declarations)", err)
	}
	return &ChainResult{
		F: f, AttrA: attrA, G: g, AttrB: attrB, H: h,
		Nodes: nodes,
		RowsF: bf.Rows, RowsG: bg.Rows, RowsH: bh.Rows,
		Estimate: ce.Estimate, Sigma: ce.Sigma, Upper: ce.Upper,
		SJF: ce.SJF, SJG: ce.SJG, SJH: ce.SJH,
		K: ce.K,
	}, nil
}

// CoordinateChain pulls all three relations' bundles from every node,
// merges each relation's partitions (chain sections merge linearly, like
// the pairwise synopses), and estimates the chain join with bounds.
func CoordinateChain(fx *Fetcher, nodes []string, f, attrA, g, attrB, h string, strict bool, warnW io.Writer) (*ChainResult, error) {
	if len(nodes) == 0 {
		return nil, errors.New("no nodes given")
	}
	bf, nf, err := MergeAcross(fx, nodes, f, strict, warnW)
	if err != nil {
		return nil, err
	}
	bg, ng, err := MergeAcross(fx, nodes, g, strict, warnW)
	if err != nil {
		return nil, err
	}
	bh, nh, err := MergeAcross(fx, nodes, h, strict, warnW)
	if err != nil {
		return nil, err
	}
	return chainEstimate(f, attrA, g, attrB, h, bf, bg, bh, max(nf, max(ng, nh)))
}

// MergeAcross fetches one relation's bundle from every node and merges
// the partitions IN NODE-LIST ORDER — the same order the daemon's cache
// merges in, which is what keeps cached answers bit-identical to fresh
// pulls. n reports how many nodes contributed.
func MergeAcross(fx *Fetcher, nodes []string, rel string, strict bool, warnW io.Writer) (*engine.RelationBundle, int, error) {
	var merged *engine.RelationBundle
	n := 0
	for _, node := range nodes {
		b, err := fx.FetchBundle(node, rel)
		if err != nil {
			if !strict && errors.Is(err, ErrNotFound) {
				if warnW != nil {
					fmt.Fprintf(warnW, "joinctl: node %s has no relation %q, skipping\n", node, rel)
				}
				continue
			}
			return nil, 0, fmt.Errorf("node %s, relation %q: %w", node, rel, err)
		}
		n++
		if merged == nil {
			merged = b
			continue
		}
		if err := merged.Merge(b); err != nil {
			return nil, 0, fmt.Errorf("node %s, relation %q: %w (check that every node runs equal -seed and shape flags)", node, rel, err)
		}
	}
	if merged == nil {
		return nil, 0, fmt.Errorf("relation %q: no node has it", rel)
	}
	return merged, n, nil
}
