package coord

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"amstrack/internal/engine"
)

// TestFetchRetryFlakyNode: a node that 500s twice before answering must
// succeed under the retry policy, with exponentially growing (jittered)
// backoff between attempts — and a 404 must NOT burn retries.
func TestFetchRetryFlakyNode(t *testing.T) {
	eng, err := engine.New(nodeOpts())
	if err != nil {
		t.Fatal(err)
	}
	define(t, eng, "orders")
	r, _ := eng.Get("orders")
	r.InsertBatch([]uint64{1, 2, 3})
	blob, err := eng.ExportRelation("orders")
	if err != nil {
		t.Fatal(err)
	}

	var calls, notFoundCalls int
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.URL.Path, "ghost") {
			notFoundCalls++
			http.Error(w, `{"error":"unknown relation"}`, http.StatusNotFound)
			return
		}
		calls++
		if calls <= 2 {
			http.Error(w, "restarting", http.StatusInternalServerError)
			return
		}
		w.Write(blob)
	}))
	t.Cleanup(flaky.Close)

	fx := NewFetcher(&http.Client{}, 3, 100*time.Millisecond)
	var sleeps []time.Duration
	fx.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }

	b, err := fx.FetchBundle(flaky.URL, "orders")
	if err != nil {
		t.Fatalf("flaky node not retried: %v", err)
	}
	if b.Rows != 3 || calls != 3 {
		t.Fatalf("rows=%d calls=%d", b.Rows, calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2", sleeps)
	}
	// Jittered exponential: first wait in [50ms, 100ms), second in
	// [100ms, 200ms) — strictly longer.
	if sleeps[0] < 50*time.Millisecond || sleeps[0] >= 100*time.Millisecond ||
		sleeps[1] < 100*time.Millisecond || sleeps[1] >= 200*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want jittered doubling from 100ms", sleeps)
	}

	// 404 is definitive: one request, no sleeps, ErrNotFound.
	sleeps = nil
	if _, err := fx.FetchBundle(flaky.URL, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("404 err = %v, want ErrNotFound", err)
	}
	if notFoundCalls != 1 || len(sleeps) != 0 {
		t.Fatalf("404 was retried: calls=%d sleeps=%v", notFoundCalls, sleeps)
	}
}

// TestPersistentFailureNamesNode: when a node stays down past the retry
// budget, the coordinator's error names the node and the attempt count —
// the operator must not have to guess which of N nodes is sick.
func TestPersistentFailureNamesNode(t *testing.T) {
	healthy, ts := newNode(t)
	define(t, healthy, "orders")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	fx := NewFetcher(&http.Client{}, 3, time.Millisecond)
	fx.sleep = func(time.Duration) {}
	_, _, err := MergeAcross(fx, []string{ts.URL, dead.URL}, "orders", true, nil)
	if err == nil {
		t.Fatal("persistently failing node accepted")
	}
	for _, want := range []string{dead.URL, "3 attempts"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
}

// TestBackoffDeepRetriesNeverOverflow is the regression test for the
// shift-overflow bug: `backoff << (attempt-1)` goes negative around
// attempt 40 (time.Duration is an int64), which skipped the jitter draw
// and handed time.Sleep a negative duration — zero wait, so the late
// retries of a long outage turned into a busy retry storm. Every wait
// through attempt 50 must be positive, never above the ~30s cap, and
// non-decreasing in expectation (each wait's lower bound is half the
// clamped exponential, so asserting wait >= previous/2 is exact, not
// flaky).
func TestBackoffDeepRetriesNeverOverflow(t *testing.T) {
	fx := NewFetcher(&http.Client{}, 50, 100*time.Millisecond)
	var sleeps []time.Duration
	fx.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	for attempt := 1; attempt <= 50; attempt++ {
		fx.pause(attempt)
	}
	if len(sleeps) != 50 {
		t.Fatalf("got %d sleeps, want 50", len(sleeps))
	}
	for i, d := range sleeps {
		if d <= 0 {
			t.Fatalf("attempt %d slept %v — the overflow bug is back", i+1, d)
		}
		if d > maxBackoff {
			t.Fatalf("attempt %d slept %v, above the %v cap", i+1, d, maxBackoff)
		}
		if i > 0 && d < sleeps[i-1]/2 {
			t.Fatalf("attempt %d slept %v after %v — waits collapsed instead of growing", i+1, d, sleeps[i-1])
		}
	}
	// The tail must sit at the cap's jitter band [cap/2, cap), not at
	// some overflowed wraparound.
	last := sleeps[len(sleeps)-1]
	if last < maxBackoff/2 || last >= maxBackoff {
		t.Fatalf("attempt 50 slept %v, want within [%v, %v)", last, maxBackoff/2, maxBackoff)
	}
}

// TestFetchJitterSeedsDiffer: two fetchers built back-to-back must draw
// different jitter sequences. The old seed was time.Now().UnixNano()
// alone, so a supervisor restarting a fleet in one tick gave every
// coordinator the SAME backoff schedule — a synchronized retry storm
// against whichever node they were all waiting on.
func TestFetchJitterSeedsDiffer(t *testing.T) {
	draw := func(fx *Fetcher) []time.Duration {
		var sleeps []time.Duration
		fx.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
		for attempt := 1; attempt <= 8; attempt++ {
			fx.pause(attempt)
		}
		return sleeps
	}
	a := draw(NewFetcher(&http.Client{}, 9, time.Second))
	b := draw(NewFetcher(&http.Client{}, 9, time.Second))
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("two fetchers drew identical jitter sequences %v — seeds are not independent", a)
	}
}

// TestFetchResponseCap is the regression test for the unbounded
// io.ReadAll: a node (or an imposter on its port) answering with more
// bytes than the cap must fail with a clear error naming the cap — and
// must NOT be retried, since the body will not shrink next attempt.
func TestFetchResponseCap(t *testing.T) {
	var calls int
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		big := make([]byte, 1<<20)
		_, _ = w.Write(big)
	}))
	t.Cleanup(huge.Close)

	fx := NewFetcher(&http.Client{}, 3, time.Millisecond)
	fx.sleep = func(time.Duration) {}
	fx.SetMaxBody(64 << 10)
	_, err := fx.FetchBundle(huge.URL, "orders")
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized response err = %v, want ErrTooLarge", err)
	}
	if !strings.Contains(err.Error(), "65536") {
		t.Fatalf("error %q does not name the cap", err)
	}
	if calls != 1 {
		t.Fatalf("oversized response fetched %d times — truncation must not retry", calls)
	}

	// At the cap exactly is fine (the +1 headroom must not misfire) —
	// proven with a real bundle whose size IS the cap.
	eng, err := engine.New(nodeOpts())
	if err != nil {
		t.Fatal(err)
	}
	define(t, eng, "orders")
	blob, err := eng.ExportRelation("orders")
	if err != nil {
		t.Fatal(err)
	}
	exact := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(blob)
	}))
	t.Cleanup(exact.Close)
	fx.SetMaxBody(int64(len(blob)))
	if _, err := fx.FetchBundle(exact.URL, "orders"); err != nil {
		t.Fatalf("bundle exactly at the cap rejected: %v", err)
	}
}

// TestFetchStat: the stat probe decodes the node's stamp and honors the
// same 404 semantics as the bundle fetch.
func TestFetchStat(t *testing.T) {
	eng, ts := newNode(t)
	define(t, eng, "orders")
	r, _ := eng.Get("orders")
	r.InsertBatch([]uint64{1, 2, 3})

	fx := testFetcher()
	st, err := fx.FetchStat(ts.URL, "orders")
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 3 || st.Rows != 3 || st.Epoch != 0 {
		t.Fatalf("stat = %+v, want seq=3 rows=3 epoch=0", st)
	}
	if _, err := fx.FetchStat(ts.URL, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat 404 err = %v, want ErrNotFound", err)
	}
}
