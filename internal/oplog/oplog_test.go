package oplog

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"amstrack/internal/exact"
	"amstrack/internal/stream"
)

func TestRoundTrip(t *testing.T) {
	ops := []stream.Op{
		{Kind: stream.Insert, Value: 42},
		{Kind: stream.Delete, Value: 42},
		{Kind: stream.Query},
		{Kind: stream.Insert, Value: 1 << 60},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.AppendAll(ops); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !got[i].Equal(ops[i]) {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		ops := make([]stream.Op, len(raw))
		for i, x := range raw {
			ops[i] = stream.Op{Kind: stream.OpKind(x % 3), Value: uint64(x)}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.AppendAll(ops); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if !got[i].Equal(ops[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRejectsInvalidKind(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Append(stream.Op{Kind: stream.OpKind(9)}); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestTornTailDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append(stream.Op{Kind: stream.Insert, Value: 7})
	_ = w.Append(stream.Op{Kind: stream.Insert, Value: 8})
	_ = w.Flush()
	torn := buf.Bytes()[:buf.Len()-5] // cut into the second record
	r := NewReader(bytes.NewReader(torn))
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should read cleanly: %v", err)
	}
	if _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn record error = %v, want ErrUnexpectedEOF", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append(stream.Op{Kind: stream.Insert, Value: 7})
	_ = w.Flush()
	data := buf.Bytes()
	data[3] ^= 0xff
	_, err := NewReader(bytes.NewReader(data)).Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption error = %v, want ErrCorrupt", err)
	}
}

func TestInvalidKindOnDiskDetected(t *testing.T) {
	// Forge a record with kind 7 and a VALID checksum: the reader must
	// still reject it.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append(stream.Op{Kind: stream.Insert, Value: 7})
	_ = w.Flush()
	data := buf.Bytes()
	data[0] = 7
	// Recompute the checksum over the forged header.
	crc := crc32IEEE(data[:9])
	data[9], data[10], data[11], data[12] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	_, err := NewReader(bytes.NewReader(data)).Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged kind error = %v, want ErrCorrupt", err)
	}
}

func crc32IEEE(b []byte) uint32 {
	table := make([]uint32, 256)
	for i := range table {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xedb88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		table[i] = c
	}
	crc := ^uint32(0)
	for _, x := range b {
		crc = table[byte(crc)^x] ^ (crc >> 8)
	}
	return ^crc
}

func TestReplayIntoTracker(t *testing.T) {
	ops := []stream.Op{
		{Kind: stream.Insert, Value: 1},
		{Kind: stream.Insert, Value: 1},
		{Kind: stream.Query},
		{Kind: stream.Delete, Value: 1},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.AppendAll(ops)
	_ = w.Flush()

	h := exact.NewHistogram()
	queries := 0
	applied, err := Replay(&buf, histAdapter{h}, func() { queries++ })
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 || queries != 1 {
		t.Fatalf("applied = %d queries = %d", applied, queries)
	}
	if h.Len() != 1 || h.SelfJoin() != 1 {
		t.Fatalf("tracker state wrong: len=%d sj=%d", h.Len(), h.SelfJoin())
	}
}

func TestReplayPropagatesDeleteError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append(stream.Op{Kind: stream.Delete, Value: 5}) // invalid: nothing live
	_ = w.Flush()
	h := exact.NewHistogram()
	if _, err := Replay(&buf, histAdapter{h}, nil); err == nil {
		t.Fatal("invalid delete not propagated")
	}
}

// histAdapter adapts the exact histogram to stream.Tracker.
type histAdapter struct{ h *exact.Histogram }

func (a histAdapter) Insert(v uint64)       { a.h.Insert(v) }
func (a histAdapter) Delete(v uint64) error { return a.h.Delete(v) }

func TestReaderCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append(stream.Op{Kind: stream.Insert, Value: 1})
	_ = w.Append(stream.Op{Kind: stream.Insert, Value: 2})
	_ = w.Flush()
	r := NewReader(&buf)
	_, _ = r.Next()
	if r.Count() != 1 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func BenchmarkAppend(b *testing.B) {
	w := NewWriter(io.Discard)
	op := stream.Op{Kind: stream.Insert, Value: 12345}
	for i := 0; i < b.N; i++ {
		if err := w.Append(op); err != nil {
			b.Fatal(err)
		}
	}
}
