package oplog

import (
	"bytes"
	"io"
	"testing"

	"amstrack/internal/stream"
)

// FuzzReader drives Reader.Next with arbitrary byte streams — random
// garbage, valid logs, and torn-tail prefixes of valid logs — and checks
// the recovery contract the engine depends on:
//
//   - Next never panics;
//   - whatever happens, Offset() is a clean truncation point: within the
//     input, and the prefix up to it re-reads cleanly as exactly Count()
//     records (records are variable-length now that tuple kinds exist, so
//     the re-read is the boundary proof);
//   - a failure is reported as io.ErrUnexpectedEOF (short tail) only when
//     the input ends mid-record, and as ErrCorrupt otherwise.
func FuzzReader(f *testing.F) {
	// Seed: a valid log (both record versions) and several torn prefixes.
	var valid bytes.Buffer
	w := NewWriter(&valid)
	for i := 0; i < 8; i++ {
		_ = w.Append(stream.Op{Kind: stream.Insert, Value: uint64(i * 7)})
	}
	_ = w.Append(stream.Op{Kind: stream.Delete, Value: 7})
	_ = w.Append(stream.Op{Kind: stream.Query})
	_ = w.Append(stream.Op{Kind: stream.Insert, Value: 3, Rest: []uint64{9, 27}})
	_ = w.Append(stream.Op{Kind: stream.Delete, Value: 3, Rest: []uint64{9, 27}})
	_ = w.Flush()
	full := valid.Bytes()
	f.Add([]byte{})
	f.Add(append([]byte(nil), full...))
	for _, cut := range []int{1, recordSize - 1, recordSize, recordSize + 5, len(full) - 1} {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	f.Add(bytes.Repeat([]byte{0xFF}, 3*recordSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		lr := NewReader(bytes.NewReader(data))
		var ops []stream.Op
		var failure error
		for {
			op, err := lr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				failure = err
				break
			}
			ops = append(ops, op)
		}
		clean := lr.Offset()
		if clean > int64(len(data)) {
			t.Fatalf("Offset %d beyond input length %d", clean, len(data))
		}
		if failure == nil {
			// Clean EOF is only legal exactly at the end of the input.
			if clean != int64(len(data)) {
				t.Fatalf("clean EOF with %d bytes unaccounted", int64(len(data))-clean)
			}
		} else if failure == io.ErrUnexpectedEOF {
			// Short-tail reports require at least a started record.
			if int(clean) == len(data) {
				t.Fatal("torn-tail error with no partial record")
			}
		}

		// The clean prefix must re-read without error, yielding the same ops.
		again, err := ReadAll(bytes.NewReader(data[:clean]))
		if err != nil {
			t.Fatalf("clean prefix re-read failed: %v", err)
		}
		if len(again) != len(ops) {
			t.Fatalf("re-read %d ops, want %d", len(again), len(ops))
		}
		for i := range ops {
			if !again[i].Equal(ops[i]) {
				t.Fatalf("op %d differs on re-read", i)
			}
		}
	})
}
