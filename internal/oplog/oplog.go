// Package oplog persists operation streams as append-only binary logs —
// the "update log" of the paper's §5 warehouse scenario, where tracking
// algorithms periodically catch up "by stepping through any additions to
// the update log since the previous run".
//
// Record format, version 1 (little endian):
//
//	byte   kind (0 insert, 1 delete, 2 query)
//	uint64 value (0 for query)
//	uint32 crc32 of the 9 bytes above
//
// Record format, version 2 — the multi-attribute tuple records of the
// engine's chain-join schemas (kind bytes 3 and 4 never appear in logs
// written before they existed, so both versions coexist in one stream
// and old logs read back unchanged):
//
//	byte   kind (3 tuple insert, 4 tuple delete)
//	byte   arity m (2..255; arity-1 ops use the version-1 kinds)
//	m × uint64 attribute values, primary first
//	uint32 crc32 of the 2+8m bytes above
//
// Each record is independently checksummed so a torn tail write is
// detected and reported as a clean truncation point rather than silent
// corruption. A Reader hands back stream.Op values (tuple records carry
// their non-primary attributes in Op.Rest); a Writer appends them.
package oplog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"amstrack/internal/stream"
)

// MinRecordSize is the smallest record encoding (the version-1 layout).
// A log tail shorter than this cannot hold any complete record, which is
// what lets recovery classify an undecodable sub-record tail as torn
// rather than corrupt.
const MinRecordSize = 1 + 8 + 4

const (
	recordSize = MinRecordSize
	// Tuple-record kind bytes (version 2). They live beyond the
	// stream.OpKind space on purpose: a version-1 reader meeting one
	// reports corruption instead of misdecoding it.
	kindTupleInsert = 3
	kindTupleDelete = 4
	// maxArity is the widest tuple a record can carry (the arity field is
	// one byte; 0 and 1 are reserved for the version-1 kinds).
	maxArity = 255
	// maxRecordSize bounds the Reader's scratch: the widest tuple record.
	maxRecordSize = 2 + 8*maxArity + 4
)

// ErrCorrupt is returned when a record fails its checksum.
var ErrCorrupt = errors.New("oplog: corrupt record")

// Writer appends operations to an underlying writer.
type Writer struct {
	w     *bufio.Writer
	buf   [maxRecordSize]byte
	group []byte // AppendGroup encode scratch
	n     int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// encode serializes op into lw.buf and returns the record length. Ops
// without Rest encode as version-1 records byte-for-byte, so a log of
// single-attribute ops is indistinguishable from one written before
// tuple records existed.
func (lw *Writer) encode(op stream.Op) (int, error) {
	if len(op.Rest) == 0 {
		switch op.Kind {
		case stream.Insert, stream.Delete, stream.Query:
		default:
			return 0, fmt.Errorf("oplog: invalid op kind %d", op.Kind)
		}
		lw.buf[0] = byte(op.Kind)
		binary.LittleEndian.PutUint64(lw.buf[1:], op.Value)
		binary.LittleEndian.PutUint32(lw.buf[9:], crc32.ChecksumIEEE(lw.buf[:9]))
		return recordSize, nil
	}
	var kind byte
	switch op.Kind {
	case stream.Insert:
		kind = kindTupleInsert
	case stream.Delete:
		kind = kindTupleDelete
	default:
		return 0, fmt.Errorf("oplog: op kind %d cannot carry a tuple payload", op.Kind)
	}
	arity := 1 + len(op.Rest)
	if arity > maxArity {
		return 0, fmt.Errorf("oplog: tuple arity %d exceeds %d", arity, maxArity)
	}
	lw.buf[0] = kind
	lw.buf[1] = byte(arity)
	binary.LittleEndian.PutUint64(lw.buf[2:], op.Value)
	for i, v := range op.Rest {
		binary.LittleEndian.PutUint64(lw.buf[10+8*i:], v)
	}
	body := 2 + 8*arity
	binary.LittleEndian.PutUint32(lw.buf[body:], crc32.ChecksumIEEE(lw.buf[:body]))
	return body + 4, nil
}

// Append writes one operation.
func (lw *Writer) Append(op stream.Op) error {
	n, err := lw.encode(op)
	if err != nil {
		return err
	}
	if _, err := lw.w.Write(lw.buf[:n]); err != nil {
		return err
	}
	lw.n++
	return nil
}

// AppendAll writes a batch of operations.
func (lw *Writer) AppendAll(ops []stream.Op) error {
	for _, op := range ops {
		if err := lw.Append(op); err != nil {
			return err
		}
	}
	return nil
}

// AppendGroup writes a batch of operations WITHOUT flushing — the
// group-commit half of the engine's absorber path. The whole group is
// encoded into one scratch buffer and handed to the underlying writer in
// a single Write, so the per-record cost is the encode + CRC alone;
// records then sit in the Writer's buffer until a FlushPolicy (or an
// explicit Flush) pushes them down, amortizing the per-op flush cost the
// single-op ingest path pays.
func (lw *Writer) AppendGroup(ops []stream.Op) error {
	if len(ops) == 0 {
		return nil
	}
	g := lw.group[:0]
	if cap(g) < len(ops)*recordSize {
		// Capacity hint only (tuple records run longer than recordSize);
		// append grows as needed and the grown scratch is kept below, so
		// steady-state group commits stay allocation-free.
		g = make([]byte, 0, len(ops)*recordSize)
	}
	for _, op := range ops {
		n, err := lw.encode(op)
		if err != nil {
			return err
		}
		g = append(g, lw.buf[:n]...)
	}
	lw.group = g
	if _, err := lw.w.Write(g); err != nil {
		return err
	}
	lw.n += int64(len(ops))
	return nil
}

// Count returns how many records have been appended.
func (lw *Writer) Count() int64 { return lw.n }

// Flush flushes buffered records to the underlying writer.
func (lw *Writer) Flush() error { return lw.w.Flush() }

// FlushPolicy is the group-commit knob pair: a pending group is flushed
// to the underlying writer when it reaches MaxRecords records or when
// the OLDEST pending record has waited MaxDelay, whichever comes first.
// The zero value selects the defaults.
type FlushPolicy struct {
	// MaxRecords caps the pending group size (0 → 512).
	MaxRecords int
	// MaxDelay caps how long the oldest pending record may wait
	// unflushed (0 → 200µs).
	MaxDelay time.Duration
}

// Default flush-policy values (see FlushPolicy).
const (
	DefaultFlushRecords = 512
	DefaultFlushDelay   = 200 * time.Microsecond
)

// Normalize fills zero fields with the defaults.
func (p FlushPolicy) Normalize() FlushPolicy {
	if p.MaxRecords == 0 {
		p.MaxRecords = DefaultFlushRecords
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultFlushDelay
	}
	return p
}

// Due reports whether a group of pending records, the oldest of which
// has waited for age, must be flushed now under the policy.
func (p FlushPolicy) Due(pending int, age time.Duration) bool {
	return pending >= p.MaxRecords || (pending > 0 && age >= p.MaxDelay)
}

// Reader decodes operations from an underlying reader.
type Reader struct {
	r   *bufio.Reader
	buf [maxRecordSize]byte
	n   int64
	off int64 // byte offset just past the last cleanly decoded record
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next operation. io.EOF signals a clean end;
// io.ErrUnexpectedEOF a torn tail (the stream ended mid-record);
// ErrCorrupt a checksum failure or an undecodable kind byte. Any other
// error is a genuine read failure from the underlying reader, passed
// through unchanged — callers that truncate torn tails (engine recovery)
// must NOT treat a transient I/O error as permission to cut a healthy
// log.
func (lr *Reader) Next() (stream.Op, error) {
	kind, err := lr.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return stream.Op{}, io.EOF
		}
		return stream.Op{}, fmt.Errorf("oplog: read record %d: %w", lr.n, err)
	}
	lr.buf[0] = kind
	// The kind byte fixes the record length. A corrupted kind byte either
	// lands on another valid kind (the CRC below catches it) or falls
	// outside the registry, reported as corruption here.
	var body int // record length up to (excluding) the CRC trailer
	have := 1    // header bytes already in lr.buf
	switch kind {
	case byte(stream.Insert), byte(stream.Delete), byte(stream.Query):
		body = 9
	case kindTupleInsert, kindTupleDelete:
		arity, err := lr.r.ReadByte()
		if err != nil {
			return stream.Op{}, lr.torn(err)
		}
		lr.buf[1] = arity
		have = 2
		if arity < 2 {
			return stream.Op{}, fmt.Errorf("%w at record %d: tuple arity %d", ErrCorrupt, lr.n, arity)
		}
		body = 2 + 8*int(arity)
	default:
		return stream.Op{}, fmt.Errorf("%w at record %d: kind %d", ErrCorrupt, lr.n, kind)
	}
	if _, err := io.ReadFull(lr.r, lr.buf[have:body+4]); err != nil {
		return stream.Op{}, lr.torn(err)
	}
	if crc32.ChecksumIEEE(lr.buf[:body]) != binary.LittleEndian.Uint32(lr.buf[body:]) {
		return stream.Op{}, fmt.Errorf("%w at record %d", ErrCorrupt, lr.n)
	}
	var op stream.Op
	switch kind {
	case kindTupleInsert, kindTupleDelete:
		op.Kind = stream.Insert
		if kind == kindTupleDelete {
			op.Kind = stream.Delete
		}
		op.Value = binary.LittleEndian.Uint64(lr.buf[2:])
		arity := int(lr.buf[1])
		op.Rest = make([]uint64, arity-1)
		for i := range op.Rest {
			op.Rest[i] = binary.LittleEndian.Uint64(lr.buf[10+8*i:])
		}
	default:
		op.Kind = stream.OpKind(kind)
		op.Value = binary.LittleEndian.Uint64(lr.buf[1:])
	}
	lr.n++
	lr.off += int64(body + 4)
	return op, nil
}

// torn maps a mid-record short read onto io.ErrUnexpectedEOF (a clean
// EOF after the kind byte is still a torn record: the record started).
func (lr *Reader) torn(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return io.ErrUnexpectedEOF
	}
	return fmt.Errorf("oplog: read record %d: %w", lr.n, err)
}

// Count returns how many records have been read so far.
func (lr *Reader) Count() int64 { return lr.n }

// Offset returns the byte offset just past the last cleanly decoded
// record — the truncation point a recovery should cut a torn log back to.
func (lr *Reader) Offset() int64 { return lr.off }

// ReadAll decodes every remaining record.
func ReadAll(r io.Reader) ([]stream.Op, error) {
	lr := NewReader(r)
	var ops []stream.Op
	for {
		op, err := lr.Next()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
}

// Replay streams every remaining record into a tracker, returning the
// number of update operations applied. Queries invoke onQuery if non-nil.
func Replay(r io.Reader, tr stream.Tracker, onQuery func()) (int64, error) {
	lr := NewReader(r)
	applied := int64(0)
	for {
		op, err := lr.Next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		switch op.Kind {
		case stream.Insert:
			tr.Insert(op.Value)
			applied++
		case stream.Delete:
			if err := tr.Delete(op.Value); err != nil {
				return applied, fmt.Errorf("oplog: replay record %d: %w", lr.Count()-1, err)
			}
			applied++
		case stream.Query:
			if onQuery != nil {
				onQuery()
			}
		}
	}
}
