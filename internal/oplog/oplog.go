// Package oplog persists operation streams as append-only binary logs —
// the "update log" of the paper's §5 warehouse scenario, where tracking
// algorithms periodically catch up "by stepping through any additions to
// the update log since the previous run".
//
// Record format (little endian):
//
//	byte   kind (0 insert, 1 delete, 2 query)
//	uint64 value (0 for query)
//	uint32 crc32 of the 9 bytes above
//
// Each record is independently checksummed so a torn tail write is
// detected and reported as a clean truncation point rather than silent
// corruption. A Reader hands back stream.Op values; a Writer appends them.
package oplog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"amstrack/internal/stream"
)

const recordSize = 1 + 8 + 4

// ErrCorrupt is returned when a record fails its checksum.
var ErrCorrupt = errors.New("oplog: corrupt record")

// Writer appends operations to an underlying writer.
type Writer struct {
	w     *bufio.Writer
	buf   [recordSize]byte
	group []byte // AppendGroup encode scratch
	n     int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Append writes one operation.
func (lw *Writer) Append(op stream.Op) error {
	switch op.Kind {
	case stream.Insert, stream.Delete, stream.Query:
	default:
		return fmt.Errorf("oplog: invalid op kind %d", op.Kind)
	}
	lw.buf[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(lw.buf[1:], op.Value)
	binary.LittleEndian.PutUint32(lw.buf[9:], crc32.ChecksumIEEE(lw.buf[:9]))
	if _, err := lw.w.Write(lw.buf[:]); err != nil {
		return err
	}
	lw.n++
	return nil
}

// AppendAll writes a batch of operations.
func (lw *Writer) AppendAll(ops []stream.Op) error {
	for _, op := range ops {
		if err := lw.Append(op); err != nil {
			return err
		}
	}
	return nil
}

// AppendGroup writes a batch of operations WITHOUT flushing — the
// group-commit half of the engine's absorber path. The whole group is
// encoded into one scratch buffer and handed to the underlying writer in
// a single Write, so the per-record cost is the encode + CRC alone;
// records then sit in the Writer's buffer until a FlushPolicy (or an
// explicit Flush) pushes them down, amortizing the per-op flush cost the
// single-op ingest path pays.
func (lw *Writer) AppendGroup(ops []stream.Op) error {
	if len(ops) == 0 {
		return nil
	}
	if cap(lw.group) < len(ops)*recordSize {
		lw.group = make([]byte, len(ops)*recordSize)
	}
	g := lw.group[:0]
	for _, op := range ops {
		switch op.Kind {
		case stream.Insert, stream.Delete, stream.Query:
		default:
			return fmt.Errorf("oplog: invalid op kind %d", op.Kind)
		}
		lw.buf[0] = byte(op.Kind)
		binary.LittleEndian.PutUint64(lw.buf[1:], op.Value)
		binary.LittleEndian.PutUint32(lw.buf[9:], crc32.ChecksumIEEE(lw.buf[:9]))
		g = append(g, lw.buf[:]...)
	}
	if _, err := lw.w.Write(g); err != nil {
		return err
	}
	lw.n += int64(len(ops))
	return nil
}

// Count returns how many records have been appended.
func (lw *Writer) Count() int64 { return lw.n }

// Flush flushes buffered records to the underlying writer.
func (lw *Writer) Flush() error { return lw.w.Flush() }

// FlushPolicy is the group-commit knob pair: a pending group is flushed
// to the underlying writer when it reaches MaxRecords records or when
// the OLDEST pending record has waited MaxDelay, whichever comes first.
// The zero value selects the defaults.
type FlushPolicy struct {
	// MaxRecords caps the pending group size (0 → 512).
	MaxRecords int
	// MaxDelay caps how long the oldest pending record may wait
	// unflushed (0 → 200µs).
	MaxDelay time.Duration
}

// Default flush-policy values (see FlushPolicy).
const (
	DefaultFlushRecords = 512
	DefaultFlushDelay   = 200 * time.Microsecond
)

// Normalize fills zero fields with the defaults.
func (p FlushPolicy) Normalize() FlushPolicy {
	if p.MaxRecords == 0 {
		p.MaxRecords = DefaultFlushRecords
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultFlushDelay
	}
	return p
}

// Due reports whether a group of pending records, the oldest of which
// has waited for age, must be flushed now under the policy.
func (p FlushPolicy) Due(pending int, age time.Duration) bool {
	return pending >= p.MaxRecords || (pending > 0 && age >= p.MaxDelay)
}

// Reader decodes operations from an underlying reader.
type Reader struct {
	r   *bufio.Reader
	buf [recordSize]byte
	n   int64
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next operation. io.EOF signals a clean end;
// io.ErrUnexpectedEOF a torn tail (the stream ended mid-record);
// ErrCorrupt a checksum failure. Any other error is a genuine read
// failure from the underlying reader, passed through unchanged — callers
// that truncate torn tails (engine recovery) must NOT treat a transient
// I/O error as permission to cut a healthy log.
func (lr *Reader) Next() (stream.Op, error) {
	if _, err := io.ReadFull(lr.r, lr.buf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return stream.Op{}, err
		}
		return stream.Op{}, fmt.Errorf("oplog: read record %d: %w", lr.n, err)
	}
	if crc32.ChecksumIEEE(lr.buf[:9]) != binary.LittleEndian.Uint32(lr.buf[9:]) {
		return stream.Op{}, fmt.Errorf("%w at record %d", ErrCorrupt, lr.n)
	}
	kind := stream.OpKind(lr.buf[0])
	switch kind {
	case stream.Insert, stream.Delete, stream.Query:
	default:
		return stream.Op{}, fmt.Errorf("%w at record %d: kind %d", ErrCorrupt, lr.n, kind)
	}
	lr.n++
	return stream.Op{Kind: kind, Value: binary.LittleEndian.Uint64(lr.buf[1:])}, nil
}

// Count returns how many records have been read so far.
func (lr *Reader) Count() int64 { return lr.n }

// Offset returns the byte offset just past the last cleanly decoded
// record — the truncation point a recovery should cut a torn log back to.
func (lr *Reader) Offset() int64 { return lr.n * recordSize }

// ReadAll decodes every remaining record.
func ReadAll(r io.Reader) ([]stream.Op, error) {
	lr := NewReader(r)
	var ops []stream.Op
	for {
		op, err := lr.Next()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
}

// Replay streams every remaining record into a tracker, returning the
// number of update operations applied. Queries invoke onQuery if non-nil.
func Replay(r io.Reader, tr stream.Tracker, onQuery func()) (int64, error) {
	lr := NewReader(r)
	applied := int64(0)
	for {
		op, err := lr.Next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		switch op.Kind {
		case stream.Insert:
			tr.Insert(op.Value)
			applied++
		case stream.Delete:
			if err := tr.Delete(op.Value); err != nil {
				return applied, fmt.Errorf("oplog: replay record %d: %w", lr.Count()-1, err)
			}
			applied++
		case stream.Query:
			if onQuery != nil {
				onQuery()
			}
		}
	}
}
