// Filesystem seam for the durability stack. Production code runs on the
// passthrough OSFS; the fault-injection tests swap in a FaultFS that can
// fail fsync, run out of space mid-write (tearing the write at byte
// granularity), and die at named crash points — after which every
// mutating call fails, which is exactly the shape of a kill -9: bytes
// already written survive in the page cache, buffered data is lost
// because nothing can flush it anymore.
package oplog

import (
	"errors"
	"io"
	iofs "io/fs"
	"os"
	"sync"
)

// FS is the filesystem surface the engine's durability layer needs. It
// is deliberately narrow: append handles, whole-file reads (segments are
// bounded by the roll threshold), directory scans, and the rename/
// remove/truncate/dirsync calls of the checkpoint commit protocol.
type FS interface {
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]iofs.DirEntry, error)
	MkdirAll(path string, perm iofs.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and unlinks inside it
	// durable.
	SyncDir(name string) error
	// Crash is a named crash point: a nil error on the real filesystem,
	// an injected-death trigger on a FaultFS armed for that point.
	// Durability code calls it at the commit-protocol boundaries
	// (ckpt-pre-fsync, ckpt-post-fsync-pre-rename,
	// ckpt-post-rename-pre-unlink, compact-mid).
	Crash(point string) error
}

// File is the open-handle surface: write, fsync, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the passthrough implementation over the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)          { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]iofs.DirEntry, error)  { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm iofs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Remove(name string) error                      { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error          { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error        { return os.Truncate(name, size) }
func (osFS) Crash(string) error                            { return nil }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Injected-failure sentinels. ErrInjectedCrash marks the simulated
// process death; ErrNoSpace the simulated full disk.
var (
	ErrInjectedCrash = errors.New("oplog: injected crash")
	ErrNoSpace       = errors.New("oplog: injected ENOSPC")
)

// FaultFS wraps a base FS (nil → OSFS) with injectable failures. All
// methods are safe for concurrent use. Once the FS has crashed — via an
// armed crash point or CrashNow — every call fails with
// ErrInjectedCrash: the bytes that reached the base FS before the crash
// are what a restarted process will find.
type FaultFS struct {
	Base FS

	mu        sync.Mutex
	dead      bool
	syncErr   error
	budgeted  bool
	budget    int64 // write bytes remaining before ErrNoSpace
	crashArm  map[string]int // point → remaining hits before death (1 = next hit)
}

// NewFaultFS wraps base (nil → OSFS).
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OSFS
	}
	return &FaultFS{Base: base, crashArm: map[string]int{}}
}

// FailSync makes every future Sync and SyncDir fail with err; nil
// restores normal behavior.
func (f *FaultFS) FailSync(err error) {
	f.mu.Lock()
	f.syncErr = err
	f.mu.Unlock()
}

// LimitWriteBytes allows n more bytes of file writes; the write that
// crosses the budget lands only its in-budget prefix (a torn write at
// byte granularity) and returns ErrNoSpace, as do all writes after it.
func (f *FaultFS) LimitWriteBytes(n int64) {
	f.mu.Lock()
	f.budgeted, f.budget = true, n
	f.mu.Unlock()
}

// CrashAt arms the named crash point: the hit-th call of Crash(point)
// (1 = next) kills the filesystem. See Crash on FS.
func (f *FaultFS) CrashAt(point string, hit int) {
	if hit < 1 {
		hit = 1
	}
	f.mu.Lock()
	f.crashArm[point] = hit
	f.mu.Unlock()
}

// CrashNow kills the filesystem immediately.
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
}

// Crashed reports whether an injected crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// check is the common per-call gate.
func (f *FaultFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return ErrInjectedCrash
	}
	return nil
}

func (f *FaultFS) Crash(point string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return ErrInjectedCrash
	}
	if n, ok := f.crashArm[point]; ok {
		if n <= 1 {
			f.dead = true
			return ErrInjectedCrash
		}
		f.crashArm[point] = n - 1
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.Base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.Base.ReadFile(name)
}

func (f *FaultFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.Base.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm iofs.FileMode) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Base.MkdirAll(path, perm)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Base.Remove(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Base.Rename(oldpath, newpath)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Base.Truncate(name, size)
}

func (f *FaultFS) SyncDir(name string) error {
	f.mu.Lock()
	dead, syncErr := f.dead, f.syncErr
	f.mu.Unlock()
	if dead {
		return ErrInjectedCrash
	}
	if syncErr != nil {
		return syncErr
	}
	return f.Base.SyncDir(name)
}

// faultFile applies the write budget and sync failures to one handle.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	if w.fs.dead {
		w.fs.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	allow := len(p)
	var inject error
	if w.fs.budgeted {
		if int64(allow) > w.fs.budget {
			allow, inject = int(w.fs.budget), ErrNoSpace
		}
		w.fs.budget -= int64(allow)
	}
	w.fs.mu.Unlock()
	n := 0
	if allow > 0 {
		var err error
		n, err = w.f.Write(p[:allow])
		if err != nil {
			return n, err
		}
	}
	if inject != nil {
		return n, inject
	}
	return n, nil
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	dead, syncErr := w.fs.dead, w.fs.syncErr
	w.fs.mu.Unlock()
	if dead {
		return ErrInjectedCrash
	}
	if syncErr != nil {
		return syncErr
	}
	return w.f.Sync()
}

// Close always closes the underlying handle (no fd leaks in torture
// loops) but reports the injected death when the FS is dead.
func (w *faultFile) Close() error {
	err := w.f.Close()
	if w.fs.Crashed() {
		return ErrInjectedCrash
	}
	return err
}
