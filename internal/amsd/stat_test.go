package amsd_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"amstrack/internal/amsd"
	"amstrack/internal/engine"
)

// getStat fetches /v1/signatures/{name}?stat=1 and decodes the body.
func getStat(t *testing.T, base, name string) (amsd.SignatureStatBody, *http.Response) {
	t.Helper()
	resp := do(t, "GET", base+"/v1/signatures/"+name+"?stat=1", "", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stat %s: status %d", name, resp.StatusCode)
	}
	var st amsd.SignatureStatBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, resp
}

// TestSignatureStat pins the coordinator-facing refresh contract: the
// stat probe reports the relation's live stamp, a mutation moves it, a
// read does not, and the stamp always equals the one inside the bundle
// a full export would return right now.
func TestSignatureStat(t *testing.T) {
	eng, ts := newServer(t, 0)

	st, resp := getStat(t, ts.URL, "orders")
	if st.Relation != "orders" || st.Rows != 2000 || st.Seq == 0 {
		t.Fatalf("stat = %+v, want relation=orders rows=2000 seq>0", st)
	}
	if st.Epoch != 0 {
		t.Fatalf("in-memory engine reported epoch %d", st.Epoch)
	}
	if h := resp.Header.Get("X-Amstrack-Seq"); h == "" {
		t.Fatal("stat response missing X-Amstrack-Seq header")
	}

	// The stat must agree with the stamp inside the actual export.
	resp2 := do(t, "GET", ts.URL+"/v1/signatures/orders", "", nil)
	raw, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var b engine.RelationBundle
	if err := b.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if b.Seq != st.Seq || b.Epoch != st.Epoch || b.Rows != st.Rows {
		t.Fatalf("bundle stamp (%d,%d,%d) disagrees with stat (%d,%d,%d)",
			b.Epoch, b.Seq, b.Rows, st.Epoch, st.Seq, st.Rows)
	}

	// Exports and stats are reads: the stamp must not move.
	again, _ := getStat(t, ts.URL, "orders")
	if again != st {
		t.Fatalf("stat moved across reads: %+v then %+v", st, again)
	}

	// A mutation through the ingest endpoint moves Seq by the op count.
	resp3 := do(t, "POST", ts.URL+"/v1/ingest", "application/json",
		[]byte(`{"relation": "orders", "inserts": [1, 2, 3]}`))
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp3.StatusCode)
	}
	after, _ := getStat(t, ts.URL, "orders")
	if after.Seq != st.Seq+3 {
		t.Fatalf("Seq after 3 inserts = %d, want %d", after.Seq, st.Seq+3)
	}
	if after.Rows != st.Rows+3 {
		t.Fatalf("Rows after 3 inserts = %d, want %d", after.Rows, st.Rows+3)
	}

	// Engine-side view agrees with the HTTP view.
	es, err := eng.StatRelation("orders")
	if err != nil {
		t.Fatal(err)
	}
	if es.Seq != after.Seq || es.Rows != after.Rows {
		t.Fatalf("engine stat %+v disagrees with HTTP stat %+v", es, after)
	}
}

// TestSignatureStatHead: HEAD answers with the stamp headers and no
// body — the cheapest possible freshness probe.
func TestSignatureStatHead(t *testing.T) {
	_, ts := newServer(t, 0)

	resp := do(t, "HEAD", ts.URL+"/v1/signatures/orders", "", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Amstrack-Seq") == "" ||
		resp.Header.Get("X-Amstrack-Epoch") == "" ||
		resp.Header.Get("X-Amstrack-Rows") == "" {
		t.Fatalf("HEAD missing stamp headers: %v", resp.Header)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 0 {
		t.Fatalf("HEAD returned %d body bytes", len(body))
	}

	ghost := do(t, "HEAD", ts.URL+"/v1/signatures/ghost", "", nil)
	ghost.Body.Close()
	if ghost.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD unknown relation: status %d, want 404", ghost.StatusCode)
	}

	ghostStat := do(t, "GET", ts.URL+"/v1/signatures/ghost?stat=1", "", nil)
	ghostStat.Body.Close()
	if ghostStat.StatusCode != http.StatusNotFound {
		t.Fatalf("stat unknown relation: status %d, want 404", ghostStat.StatusCode)
	}
}
