// Package amsd is the HTTP JSON surface of the synopsis engine — the
// long-lived service the paper's §5 deployment sketch implies: update
// streams flow in as batch ingests, the query optimizer asks for join and
// self-join estimates at planning time, and an operator (or a timer)
// triggers checkpoints. cmd/amsd wraps it in a daemon; tests and the
// examples drive the same handler through httptest / an in-process
// listener.
//
// Endpoints (all JSON):
//
//	GET    /healthz                  liveness + relation count
//	GET    /v1/relations             list defined relations
//	POST   /v1/relations             {"name": N} — define a relation; optional
//	                                 "attrs"/"chain_a"/"chain_b"/"chain_ab"
//	                                 declare a multi-attribute schema with §5
//	                                 chain synopses
//	GET    /v1/relations/{name}      the relation's schema (DefineRequest shapes)
//	DELETE /v1/relations/{name}      drop a relation
//	POST   /v1/ingest                {"relation": N, "inserts": [...], "deletes": [...]};
//	                                 multi-attribute relations use
//	                                 "insert_rows"/"delete_rows" (full tuples)
//	GET    /v1/selfjoin?relation=N   self-join (skew) estimate
//	GET    /v1/join?f=F&g=G          join estimate + Lemma 4.4 σ + Fact 1.1 bound
//	POST   /v1/join/chain            {"f", "attr_a", "g", "attr_b", "h"} — §5
//	                                 three-way chain estimate + variance bounds;
//	                                 optional base64 "remote_f"/"remote_g"/
//	                                 "remote_h" bundles merge other nodes'
//	                                 partitions into the answer
//	GET    /v1/pairs                 the all-pairs planning matrix
//	POST   /v1/checkpoint            serialize state, reset oplogs (durable engines)
//
// Multi-node signature exchange (bundle bodies are the binary
// engine.RelationBundle blob, Content-Type application/octet-stream):
//
//	GET    /v1/signatures/{name}     export the relation's synopsis bundle;
//	                                 ?stat=1 (or a HEAD request) returns only
//	                                 the freshness stamp — {epoch, seq, rows}
//	                                 as JSON / X-Amstrack-* headers — so a
//	                                 coordinator can skip refetching an
//	                                 unchanged bundle
//	PUT    /v1/signatures/{name}     import a bundle as a NEW relation;
//	                                 ?mode=merge folds it into an existing one
//	POST   /v1/join/remote?relation=F  estimate F ⋈ (uploaded bundle) + bounds
//
// Errors are {"error": "..."} with conventional status codes (400 bad
// request, 404 unknown relation, 409 conflict — including a bundle whose
// synopsis shape or hash-family seed does not match this engine's — and
// 413 when a body exceeds the server's limit).
package amsd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"amstrack/internal/engine"
)

// DefaultMaxBody caps request bodies (JSON and bundle uploads alike):
// large enough for multi-million-value ingest batches and k≈10⁶ bundles,
// small enough that a hostile upload cannot balloon the process.
const DefaultMaxBody = 64 << 20

// Server answers HTTP requests from one engine. The engine is safe for
// concurrent use, so the server adds no locking of its own. Under
// IngestAbsorber engines the ingest handler's response (tuple count) and
// every estimate endpoint drain the relation's staged ops first, so a
// client always reads its own completed writes regardless of the
// engine's write path; absorber-side oplog errors surface as 500s on the
// first request after the failed flush.
type Server struct {
	eng *engine.Engine
	mux *http.ServeMux
	// maxBody is the per-request body cap in bytes (DefaultMaxBody unless
	// overridden with NewServerMaxBody).
	maxBody int64
	// wireStatus, when set, contributes the amswire listener's snapshot to
	// /healthz (see SetWireStatus).
	wireStatus func() WireStatus
}

// NewServer builds the handler for eng with the default body cap.
func NewServer(eng *engine.Engine) *Server { return NewServerMaxBody(eng, DefaultMaxBody) }

// NewServerMaxBody builds the handler with an explicit request-body cap
// in bytes (<=0 means DefaultMaxBody).
func NewServerMaxBody(eng *engine.Engine, maxBody int64) *Server {
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	s := &Server{eng: eng, mux: http.NewServeMux(), maxBody: maxBody}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/relations", s.handleListRelations)
	s.mux.HandleFunc("POST /v1/relations", s.handleDefine)
	// {name...} (multi-segment) so relation names containing '/' stay
	// reachable through the API.
	s.mux.HandleFunc("GET /v1/relations/{name...}", s.handleRelationSchema)
	s.mux.HandleFunc("DELETE /v1/relations/{name...}", s.handleDrop)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/selfjoin", s.handleSelfJoin)
	s.mux.HandleFunc("GET /v1/join", s.handleJoin)
	s.mux.HandleFunc("POST /v1/join/chain", s.handleJoinChain)
	s.mux.HandleFunc("GET /v1/pairs", s.handlePairs)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /v1/signatures/{name...}", s.handleExportSignature)
	s.mux.HandleFunc("PUT /v1/signatures/{name...}", s.handleImportSignature)
	s.mux.HandleFunc("POST /v1/join/remote", s.handleJoinRemote)
	return s
}

// ServeHTTP implements http.Handler. Every request body is capped at the
// server's limit; a handler that reads past it reports 413.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusFor maps engine errors onto HTTP codes: unknown relations are
// 404; duplicates and shape/seed-incompatible bundles 409; a body that
// overran the server cap 413; the rest (malformed JSON, corrupt blobs)
// 400.
func statusFor(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, engine.ErrUnknownRelation):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrAlreadyDefined), errors.Is(err, engine.ErrIncompatible),
		errors.Is(err, engine.ErrAttrNotTracked):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// HealthzBody is the GET /healthz response. The durability block is what
// operators alert on: a growing checkpoint age or segment count means
// recovery is getting more expensive, and a sticky oplog or checkpoint
// error means acknowledged ops may not be durable (status "degraded").
type HealthzBody struct {
	Status    string `json:"status"`
	Relations int    `json:"relations"`
	Durable   bool   `json:"durable"`
	// IngestMode is the engine's write path ("locked" or "absorber") —
	// operators watching a fleet can verify the lock-free path is live.
	IngestMode string `json:"ingest_mode"`
	// Checkpoints counts checkpoint attempts since startup.
	Checkpoints int64 `json:"checkpoints"`
	// LastCheckpointAgeSeconds is the age of the last successful
	// checkpoint; absent when none has completed yet.
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds,omitempty"`
	// LastCheckpointError is the most recent checkpoint attempt's error,
	// "" when it succeeded.
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
	// Segments is the live oplog segment count per relation — the replay
	// volume a crash right now would cost.
	Segments map[string]int `json:"segments,omitempty"`
	// OplogErrors carries each relation's sticky append error, keyed by
	// relation name; healthy relations are absent.
	OplogErrors map[string]string `json:"oplog_errors,omitempty"`
	// Wire is the amswire streaming-ingest listener's snapshot; absent
	// when the daemon serves HTTP only.
	Wire *WireStatus `json:"wire,omitempty"`
}

// WireStatus mirrors wire.Stats for /healthz (declared here so the HTTP
// layer does not import the wire package; cmd/amsd bridges the two).
type WireStatus struct {
	Addr       string `json:"addr"`
	Conns      int64  `json:"conns"`
	TotalConns int64  `json:"total_conns"`
	Batches    int64  `json:"batches"`
	Rows       int64  `json:"rows"`
	Flushes    int64  `json:"flushes"`
	Errors     int64  `json:"errors"`
}

// SetWireStatus registers the amswire snapshot source surfaced under
// /healthz "wire". Call before the server starts handling requests.
func (s *Server) SetWireStatus(fn func() WireStatus) { s.wireStatus = fn }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.DurabilityStats()
	body := HealthzBody{
		Status:              "ok",
		Relations:           len(s.eng.Names()),
		Durable:             st.Durable,
		IngestMode:          s.eng.Options().IngestMode.String(),
		Checkpoints:         st.Checkpoints,
		LastCheckpointError: st.LastCheckpointError,
	}
	if !st.LastCheckpointAt.IsZero() {
		body.LastCheckpointAgeSeconds = time.Since(st.LastCheckpointAt).Seconds()
	}
	if st.Durable {
		body.Segments = make(map[string]int, len(st.Relations))
		body.OplogErrors = map[string]string{}
		for name, rd := range st.Relations {
			body.Segments[name] = rd.Segments
			if rd.OplogError != "" {
				body.OplogErrors[name] = rd.OplogError
			}
		}
	}
	if st.LastCheckpointError != "" || len(body.OplogErrors) > 0 {
		body.Status = "degraded"
	}
	if s.wireStatus != nil {
		ws := s.wireStatus()
		body.Wire = &ws
	}
	writeJSON(w, http.StatusOK, body)
}

// RelationsBody is the GET /v1/relations response.
type RelationsBody struct {
	Relations []string `json:"relations"`
}

func (s *Server) handleListRelations(w http.ResponseWriter, _ *http.Request) {
	names := s.eng.Names()
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, RelationsBody{Relations: names})
}

// DefineRequest is the POST /v1/relations body. The schema fields are
// optional: omitting them declares the legacy single-attribute relation.
type DefineRequest struct {
	Name string `json:"name"`
	// Attrs names the tuple attributes in ingest order; attribute 0 is
	// the primary one (pairwise signature + self-join sketch).
	Attrs []string `json:"attrs,omitempty"`
	// ChainA / ChainB declare A-side / B-side chain end signatures on the
	// named attributes; ChainAB declares chain middle signatures on
	// [a-attr, b-attr] pairs.
	ChainA  []string   `json:"chain_a,omitempty"`
	ChainB  []string   `json:"chain_b,omitempty"`
	ChainAB [][]string `json:"chain_ab,omitempty"`
	// SkimHitters opts the relation into skew-robust skimming: a
	// heavy-hitter table of that many slots in front of the sketches,
	// self-join and join estimates answered as exact(hitters) +
	// sketched tail (DESIGN.md §13). 0 = plain sketches.
	SkimHitters int `json:"skim_hitters,omitempty"`
}

// DefineBody is its response.
type DefineBody struct {
	Relation string   `json:"relation"`
	Attrs    []string `json:"attrs"`
}

func (s *Server) handleDefine(w http.ResponseWriter, r *http.Request) {
	var req DefineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, statusFor(err), fmt.Errorf("decode request: %w", err))
		return
	}
	schema := engine.Schema{Attrs: req.Attrs, EndA: req.ChainA, EndB: req.ChainB, SkimHitters: req.SkimHitters}
	for _, p := range req.ChainAB {
		if len(p) != 2 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("chain_ab entry %v must name exactly two attributes", p))
			return
		}
		schema.Middle = append(schema.Middle, [2]string{p[0], p[1]})
	}
	rel, err := s.eng.DefineSchema(req.Name, schema)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, DefineBody{Relation: req.Name, Attrs: rel.Schema().Attrs})
}

// SchemaBody is the GET /v1/relations/{name} response: the relation's
// normalized schema in the same field shapes DefineRequest accepts, so a
// router (or any other tier) can read a node's schema and replay the
// exact define elsewhere.
type SchemaBody struct {
	Relation    string     `json:"relation"`
	Attrs       []string   `json:"attrs"`
	ChainA      []string   `json:"chain_a,omitempty"`
	ChainB      []string   `json:"chain_b,omitempty"`
	ChainAB     [][]string `json:"chain_ab,omitempty"`
	SkimHitters int        `json:"skim_hitters,omitempty"`
}

func (s *Server) handleRelationSchema(w http.ResponseWriter, r *http.Request) {
	rel, err := s.eng.Get(r.PathValue("name"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	sc := rel.Schema()
	body := SchemaBody{Relation: rel.Name(), Attrs: sc.Attrs, ChainA: sc.EndA, ChainB: sc.EndB, SkimHitters: sc.SkimHitters}
	for _, p := range sc.Middle {
		body.ChainAB = append(body.ChainAB, []string{p[0], p[1]})
	}
	writeJSON(w, http.StatusOK, body)
}

// DropBody is the DELETE /v1/relations/{name} response.
type DropBody struct {
	Dropped string `json:"dropped"`
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.eng.Drop(name); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, DropBody{Dropped: name})
}

// IngestRequest is the POST /v1/ingest body: inserts applied before
// deletes, mirroring Relation.InsertBatch/DeleteBatch. Single-attribute
// relations use the flat value lists; multi-attribute relations MUST use
// the row forms, each row carrying the relation's full attribute set in
// schema order (an arity mismatch is a 400).
type IngestRequest struct {
	Relation   string     `json:"relation"`
	Inserts    []uint64   `json:"inserts,omitempty"`
	Deletes    []uint64   `json:"deletes,omitempty"`
	InsertRows [][]uint64 `json:"insert_rows,omitempty"`
	DeleteRows [][]uint64 `json:"delete_rows,omitempty"`
}

// IngestBody is its response.
type IngestBody struct {
	Relation string `json:"relation"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
	Len      int64  `json:"len"`
}

// checkRows validates every row against the relation's arity before any
// op is applied, so a malformed batch is rejected whole.
func checkRows(rel *engine.Relation, rows [][]uint64) error {
	for i, row := range rows {
		if len(row) != rel.Arity() {
			return fmt.Errorf("row %d has %d values, relation %q has arity %d",
				i, len(row), rel.Name(), rel.Arity())
		}
	}
	return nil
}

// ingestScratch is the per-request decode state of the ingest hot path:
// the raw body bytes and the request struct whose value slices survive
// between requests. encoding/json grows a slice in place when its
// capacity suffices, so after warm-up a steady stream of similarly-sized
// batches decodes with no per-request buffer or op-slice allocations —
// the engine's batch paths copy staged ops before returning, which is
// what makes handing them pooled slices safe.
type ingestScratch struct {
	buf bytes.Buffer
	req IngestRequest
}

var ingestPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// ingestScratchMax caps the retained capacity: a one-off huge batch must
// not pin its buffers in the pool forever.
const ingestScratchMax = 1 << 20

// reset readies the scratch for the next decode, keeping capacities.
func (sc *ingestScratch) reset() {
	sc.buf.Reset()
	sc.req.Relation = ""
	sc.req.Inserts = sc.req.Inserts[:0]
	sc.req.Deletes = sc.req.Deletes[:0]
	sc.req.InsertRows = sc.req.InsertRows[:0]
	sc.req.DeleteRows = sc.req.DeleteRows[:0]
}

func putIngestScratch(sc *ingestScratch) {
	if sc.buf.Cap() > ingestScratchMax ||
		cap(sc.req.Inserts)+cap(sc.req.Deletes) > ingestScratchMax/8 {
		return // oversized: let it go instead of pinning it
	}
	ingestPool.Put(sc)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := ingestPool.Get().(*ingestScratch)
	defer putIngestScratch(sc)
	sc.reset()
	if _, err := sc.buf.ReadFrom(r.Body); err != nil {
		writeErr(w, statusFor(err), fmt.Errorf("read request: %w", err))
		return
	}
	req := &sc.req
	if err := json.Unmarshal(sc.buf.Bytes(), req); err != nil {
		writeErr(w, statusFor(err), fmt.Errorf("decode request: %w", err))
		return
	}
	rel, err := s.eng.Get(req.Relation)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if rel.Arity() != 1 && (len(req.Inserts) > 0 || len(req.Deletes) > 0) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf(
			"relation %q has arity %d; use insert_rows/delete_rows with full tuples",
			req.Relation, rel.Arity()))
		return
	}
	if err := checkRows(rel, req.InsertRows); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := checkRows(rel, req.DeleteRows); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rel.InsertBatch(req.Inserts)
	rel.InsertTupleBatch(req.InsertRows)
	if err := rel.DeleteBatch(req.Deletes); err != nil {
		// Engine deletes are pure linearity and never fail on validity;
		// an error here is the relation's sticky durability failure —
		// the server's fault, not the client's.
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := rel.DeleteTupleBatch(req.DeleteRows); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// DrainLen is the one-sweep barrier: in absorber mode it flushes this
	// request's ops through the pipeline (so the returned Len reads them
	// and an oplog failure they triggered is visible NOW); in locked mode
	// it reduces to Len plus the sticky-error read.
	n, err := rel.DrainLen()
	if err != nil {
		// Ops applied in memory but not durably logged: surface loudly.
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestBody{
		Relation: req.Relation,
		Inserted: len(req.Inserts) + len(req.InsertRows),
		Deleted:  len(req.Deletes) + len(req.DeleteRows),
		Len:      n,
	})
}

// SelfJoinBody is the GET /v1/selfjoin response. Estimator names which
// synopsis answered: "skimmed" (heavy-hitter table + sketched tail),
// "sketch" (dedicated Fast-AMS sketch), or "signature" (NoSketch
// engines).
type SelfJoinBody struct {
	Relation  string  `json:"relation"`
	Len       int64   `json:"len"`
	Estimate  float64 `json:"estimate"`
	Estimator string  `json:"estimator"`
}

func (s *Server) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("relation")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?relation parameter"))
		return
	}
	rel, err := s.eng.Get(name)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	est, estimator := rel.SelfJoinEstimateDetail()
	writeJSON(w, http.StatusOK, SelfJoinBody{
		Relation:  name,
		Len:       rel.Len(),
		Estimate:  est,
		Estimator: estimator,
	})
}

// JoinBody is the GET /v1/join response: the unbiased estimate plus the
// paper's bounds (Lemma 4.4 one-σ, Fact 1.1 upper bound) and the
// self-join estimates they came from.
type JoinBody struct {
	F        string  `json:"f"`
	G        string  `json:"g"`
	Estimate float64 `json:"estimate"`
	Sigma    float64 `json:"sigma"`
	Fact11   float64 `json:"fact11"`
	SJF      float64 `json:"sjf"`
	SJG      float64 `json:"sjg"`
	// Estimator names which estimator produced Estimate: "skimmed" when
	// both sides carried heavy-hitter tables, "sketch" otherwise.
	Estimator string `json:"estimator"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	f, g := r.URL.Query().Get("f"), r.URL.Query().Get("g")
	if f == "" || g == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?f or ?g parameter"))
		return
	}
	je, err := s.eng.EstimateJoin(f, g)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, JoinBody{
		F: f, G: g,
		Estimate: je.Estimate, Sigma: je.Sigma, Fact11: je.Fact11,
		SJF: je.SJF, SJG: je.SJG, Estimator: je.Estimator,
	})
}

// ChainJoinRequest is the POST /v1/join/chain body: a §5 three-way chain
// join f ⋈attr_a g ⋈attr_b h over local relations. The optional remote_*
// fields carry base64 relation bundles (the GET /v1/signatures format)
// holding OTHER nodes' partitions of the same relations; each is merged
// into its leg's local snapshot before estimating — the one-shot
// cross-node chain answer.
type ChainJoinRequest struct {
	F       string `json:"f"`
	AttrA   string `json:"attr_a"`
	G       string `json:"g"`
	AttrB   string `json:"attr_b"`
	H       string `json:"h"`
	RemoteF []byte `json:"remote_f,omitempty"`
	RemoteG []byte `json:"remote_g,omitempty"`
	RemoteH []byte `json:"remote_h,omitempty"`
}

// ChainJoinBody is its response: the unbiased chain estimate plus the
// variance-envelope σ, the Cauchy–Schwarz upper bound, and the chain
// self-join estimates they came from.
type ChainJoinBody struct {
	F        string  `json:"f"`
	AttrA    string  `json:"attr_a"`
	G        string  `json:"g"`
	AttrB    string  `json:"attr_b"`
	H        string  `json:"h"`
	Estimate float64 `json:"estimate"`
	Sigma    float64 `json:"sigma"`
	Upper    float64 `json:"upper"`
	SJF      float64 `json:"sjf"`
	SJG      float64 `json:"sjg"`
	SJH      float64 `json:"sjh"`
	K        int     `json:"k"`
}

func (s *Server) handleJoinChain(w http.ResponseWriter, r *http.Request) {
	var req ChainJoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, statusFor(err), fmt.Errorf("decode request: %w", err))
		return
	}
	if req.F == "" || req.AttrA == "" || req.G == "" || req.AttrB == "" || req.H == "" {
		writeErr(w, http.StatusBadRequest, errors.New("f, attr_a, g, attr_b, and h are all required"))
		return
	}
	ce, err := s.eng.EstimateChainJoinRemote(req.F, req.AttrA, req.G, req.AttrB, req.H,
		req.RemoteF, req.RemoteG, req.RemoteH)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ChainJoinBody{
		F: req.F, AttrA: req.AttrA, G: req.G, AttrB: req.AttrB, H: req.H,
		Estimate: ce.Estimate, Sigma: ce.Sigma, Upper: ce.Upper,
		SJF: ce.SJF, SJG: ce.SJG, SJH: ce.SJH, K: ce.K,
	})
}

// PairsBody is the GET /v1/pairs response.
type PairsBody struct {
	Pairs []JoinBody `json:"pairs"`
}

func (s *Server) handlePairs(w http.ResponseWriter, _ *http.Request) {
	pairs, err := s.eng.AllPairs()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := PairsBody{Pairs: make([]JoinBody, 0, len(pairs))}
	for _, p := range pairs {
		out.Pairs = append(out.Pairs, JoinBody{
			F: p.F, G: p.G,
			Estimate: p.Estimate, Sigma: p.Sigma, Fact11: p.Fact11,
			SJF: p.SJF, SJG: p.SJG, Estimator: p.Estimator,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// CheckpointBody is the POST /v1/checkpoint response.
type CheckpointBody struct {
	Bytes int `json:"bytes"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	n, err := s.eng.Checkpoint()
	if err != nil {
		status := http.StatusInternalServerError
		if s.eng.Dir() == "" {
			status = http.StatusConflict // in-memory engine: nothing to checkpoint to
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointBody{Bytes: n})
}

// SignatureStatBody is the GET /v1/signatures/{name}?stat=1 response:
// the relation's freshness stamp without the bundle payload. Seq moves
// with every mutation and Epoch with every durability-log generation, so
// an unchanged (epoch, seq) pair guarantees the export bytes are
// unchanged — the contract coordinator caches poll before refetching.
type SignatureStatBody struct {
	Relation string `json:"relation"`
	Epoch    uint64 `json:"epoch"`
	Seq      uint64 `json:"seq"`
	Rows     int64  `json:"rows"`
}

// setStampHeaders mirrors the stamp into X-Amstrack-* headers so HEAD
// callers get it without a body.
func setStampHeaders(w http.ResponseWriter, st engine.RelationStat) {
	w.Header().Set("X-Amstrack-Epoch", fmt.Sprint(st.Epoch))
	w.Header().Set("X-Amstrack-Seq", fmt.Sprint(st.Seq))
	w.Header().Set("X-Amstrack-Rows", fmt.Sprint(st.Rows))
}

// handleExportSignature streams the relation's synopsis bundle — the
// linear synopses a coordinator or peer node can merge into its own with
// zero accuracy loss (engines must share Seed and shape options). With
// ?stat=1, or on a HEAD request (Go's mux routes HEAD through GET
// patterns), it answers with just the freshness stamp: no synopsis
// serialization, no payload — the cheap probe a background refresher
// issues every interval.
func (s *Server) handleExportSignature(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if r.Method == http.MethodHead || r.URL.Query().Get("stat") != "" {
		st, err := s.eng.StatRelation(name)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		setStampHeaders(w, st)
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusOK)
			return
		}
		writeJSON(w, http.StatusOK, SignatureStatBody{
			Relation: name, Epoch: st.Epoch, Seq: st.Seq, Rows: st.Rows,
		})
		return
	}
	data, err := s.eng.ExportRelation(name)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// ImportBody is the PUT /v1/signatures/{name} response.
type ImportBody struct {
	Relation string `json:"relation"`
	Mode     string `json:"mode"` // "import" or "merge"
	Len      int64  `json:"len"`
}

// handleImportSignature accepts a bundle upload: by default it defines a
// new relation from the bundle (201; 409 if the name exists), with
// ?mode=merge it folds the bundle into an existing relation (200; 404 if
// absent). Shape/seed mismatches are 409, corrupt blobs 400.
func (s *Server) handleImportSignature(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, statusFor(err), fmt.Errorf("read bundle: %w", err))
		return
	}
	mode := r.URL.Query().Get("mode")
	status := http.StatusCreated
	switch mode {
	case "", "import":
		mode = "import"
		err = s.eng.ImportRelation(name, data)
	case "merge":
		status = http.StatusOK
		err = s.eng.MergeRelation(name, data)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q (want import or merge)", mode))
		return
	}
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	rel, err := s.eng.Get(name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, status, ImportBody{Relation: name, Mode: mode, Len: rel.Len()})
}

// handleJoinRemote estimates the join of a LOCAL relation (?relation=F)
// against an uploaded bundle, without defining it — the one-shot
// cross-node join answer, bounds attached.
func (s *Server) handleJoinRemote(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("relation")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?relation parameter"))
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, statusFor(err), fmt.Errorf("read bundle: %w", err))
		return
	}
	je, err := s.eng.EstimateJoinBundle(name, data)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, JoinBody{
		F: name, G: "(remote bundle)",
		Estimate: je.Estimate, Sigma: je.Sigma, Fact11: je.Fact11,
		SJF: je.SJF, SJG: je.SJG, Estimator: je.Estimator,
	})
}
