// Package amsd is the HTTP JSON surface of the synopsis engine — the
// long-lived service the paper's §5 deployment sketch implies: update
// streams flow in as batch ingests, the query optimizer asks for join and
// self-join estimates at planning time, and an operator (or a timer)
// triggers checkpoints. cmd/amsd wraps it in a daemon; tests and the
// examples drive the same handler through httptest / an in-process
// listener.
//
// Endpoints (all JSON):
//
//	GET    /healthz                  liveness + relation count
//	GET    /v1/relations             list defined relations
//	POST   /v1/relations             {"name": N} — define a relation
//	DELETE /v1/relations/{name}      drop a relation
//	POST   /v1/ingest                {"relation": N, "inserts": [...], "deletes": [...]}
//	GET    /v1/selfjoin?relation=N   self-join (skew) estimate
//	GET    /v1/join?f=F&g=G          join estimate + Lemma 4.4 σ + Fact 1.1 bound
//	GET    /v1/pairs                 the all-pairs planning matrix
//	POST   /v1/checkpoint            serialize state, reset oplogs (durable engines)
//
// Errors are {"error": "..."} with conventional status codes (400 bad
// request, 404 unknown relation, 409 conflict).
package amsd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"amstrack/internal/engine"
)

// Server answers HTTP requests from one engine. The engine is safe for
// concurrent use, so the server adds no locking of its own.
type Server struct {
	eng *engine.Engine
	mux *http.ServeMux
}

// NewServer builds the handler for eng.
func NewServer(eng *engine.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/relations", s.handleListRelations)
	s.mux.HandleFunc("POST /v1/relations", s.handleDefine)
	// {name...} (multi-segment) so relation names containing '/' stay
	// droppable through the API.
	s.mux.HandleFunc("DELETE /v1/relations/{name...}", s.handleDrop)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/selfjoin", s.handleSelfJoin)
	s.mux.HandleFunc("GET /v1/join", s.handleJoin)
	s.mux.HandleFunc("GET /v1/pairs", s.handlePairs)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusFor maps engine errors onto HTTP codes: unknown relations are
// 404, duplicates 409, the rest 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, engine.ErrUnknownRelation):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrAlreadyDefined):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// HealthzBody is the GET /healthz response.
type HealthzBody struct {
	Status    string `json:"status"`
	Relations int    `json:"relations"`
	Durable   bool   `json:"durable"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthzBody{
		Status:    "ok",
		Relations: len(s.eng.Names()),
		Durable:   s.eng.Dir() != "",
	})
}

// RelationsBody is the GET /v1/relations response.
type RelationsBody struct {
	Relations []string `json:"relations"`
}

func (s *Server) handleListRelations(w http.ResponseWriter, _ *http.Request) {
	names := s.eng.Names()
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, RelationsBody{Relations: names})
}

// DefineRequest is the POST /v1/relations body.
type DefineRequest struct {
	Name string `json:"name"`
}

// DefineBody is its response.
type DefineBody struct {
	Relation string `json:"relation"`
}

func (s *Server) handleDefine(w http.ResponseWriter, r *http.Request) {
	var req DefineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if _, err := s.eng.Define(req.Name); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, DefineBody{Relation: req.Name})
}

// DropBody is the DELETE /v1/relations/{name} response.
type DropBody struct {
	Dropped string `json:"dropped"`
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.eng.Drop(name); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, DropBody{Dropped: name})
}

// IngestRequest is the POST /v1/ingest body: a batch of inserts applied
// before a batch of deletes, mirroring Relation.InsertBatch/DeleteBatch.
type IngestRequest struct {
	Relation string   `json:"relation"`
	Inserts  []uint64 `json:"inserts,omitempty"`
	Deletes  []uint64 `json:"deletes,omitempty"`
}

// IngestBody is its response.
type IngestBody struct {
	Relation string `json:"relation"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
	Len      int64  `json:"len"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	rel, err := s.eng.Get(req.Relation)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	rel.InsertBatch(req.Inserts)
	if err := rel.DeleteBatch(req.Deletes); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := rel.Err(); err != nil {
		// Ops applied in memory but not durably logged: surface loudly.
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestBody{
		Relation: req.Relation,
		Inserted: len(req.Inserts),
		Deleted:  len(req.Deletes),
		Len:      rel.Len(),
	})
}

// SelfJoinBody is the GET /v1/selfjoin response.
type SelfJoinBody struct {
	Relation string  `json:"relation"`
	Len      int64   `json:"len"`
	Estimate float64 `json:"estimate"`
}

func (s *Server) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("relation")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?relation parameter"))
		return
	}
	rel, err := s.eng.Get(name)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, SelfJoinBody{
		Relation: name,
		Len:      rel.Len(),
		Estimate: rel.SelfJoinEstimate(),
	})
}

// JoinBody is the GET /v1/join response: the unbiased estimate plus the
// paper's bounds (Lemma 4.4 one-σ, Fact 1.1 upper bound) and the
// self-join estimates they came from.
type JoinBody struct {
	F        string  `json:"f"`
	G        string  `json:"g"`
	Estimate float64 `json:"estimate"`
	Sigma    float64 `json:"sigma"`
	Fact11   float64 `json:"fact11"`
	SJF      float64 `json:"sjf"`
	SJG      float64 `json:"sjg"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	f, g := r.URL.Query().Get("f"), r.URL.Query().Get("g")
	if f == "" || g == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?f or ?g parameter"))
		return
	}
	je, err := s.eng.EstimateJoin(f, g)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, JoinBody{
		F: f, G: g,
		Estimate: je.Estimate, Sigma: je.Sigma, Fact11: je.Fact11,
		SJF: je.SJF, SJG: je.SJG,
	})
}

// PairsBody is the GET /v1/pairs response.
type PairsBody struct {
	Pairs []JoinBody `json:"pairs"`
}

func (s *Server) handlePairs(w http.ResponseWriter, _ *http.Request) {
	pairs, err := s.eng.AllPairs()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := PairsBody{Pairs: make([]JoinBody, 0, len(pairs))}
	for _, p := range pairs {
		out.Pairs = append(out.Pairs, JoinBody{
			F: p.F, G: p.G,
			Estimate: p.Estimate, Sigma: p.Sigma, Fact11: p.Fact11,
			SJF: p.SJF, SJG: p.SJG,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// CheckpointBody is the POST /v1/checkpoint response.
type CheckpointBody struct {
	Bytes int `json:"bytes"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	n, err := s.eng.Checkpoint()
	if err != nil {
		status := http.StatusInternalServerError
		if s.eng.Dir() == "" {
			status = http.StatusConflict // in-memory engine: nothing to checkpoint to
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointBody{Bytes: n})
}
