package amsd_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"amstrack/internal/amsd"
	"amstrack/internal/engine"
	"amstrack/internal/oplog"
	"amstrack/internal/xrand"
)

func srvOpts() engine.Options {
	return engine.Options{SignatureWords: 128, SignatureRows: 4, Seed: 17, SketchS1: 64, SketchS2: 4}
}

// newServer builds an in-memory engine with two populated relations and
// serves it; maxBody <= 0 means the default cap.
func newServer(t *testing.T, maxBody int64) (*engine.Engine, *httptest.Server) {
	t.Helper()
	eng, err := engine.New(srvOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	for _, name := range []string{"orders", "items"} {
		rel, err := eng.Define(name)
		if err != nil {
			t.Fatal(err)
		}
		vs := make([]uint64, 2000)
		for i := range vs {
			vs[i] = r.Uint64n(100)
		}
		rel.InsertBatch(vs)
	}
	ts := httptest.NewServer(amsd.NewServerMaxBody(eng, maxBody))
	t.Cleanup(ts.Close)
	return eng, ts
}

func do(t *testing.T, method, url, contentType string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// exportBundle pulls a relation bundle from an engine for upload bodies.
func exportBundle(t *testing.T, e *engine.Engine, name string) []byte {
	t.Helper()
	b, err := e.ExportRelation(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestErrorPaths: every malformed, unknown, mismatched, or oversized
// request returns its intended status AND a JSON {"error": ...} body —
// never a 500, never a panic, never a non-JSON error.
func TestErrorPaths(t *testing.T) {
	_, ts := newServer(t, 4096) // small body cap to make "oversized" cheap

	// A bundle from a seed-mismatched engine (shape otherwise equal).
	foreignOpts := srvOpts()
	foreignOpts.Seed = 18
	foreign, err := engine.New(foreignOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := foreign.Define("orders"); err != nil {
		t.Fatal(err)
	}
	mismatched := exportBundle(t, foreign, "orders")

	big := bytes.Repeat([]byte{'9'}, 8192) // over the 4 KiB cap
	bigJSON := []byte(fmt.Sprintf(`{"relation": "orders", "inserts": [%s]}`, big))

	cases := []struct {
		name        string
		method, url string
		body        []byte
		wantStatus  int
	}{
		{"ingest malformed JSON", "POST", "/v1/ingest", []byte(`{"relation": "orders", "inserts": [`), http.StatusBadRequest},
		{"define malformed JSON", "POST", "/v1/relations", []byte(`not json`), http.StatusBadRequest},
		{"ingest unknown relation", "POST", "/v1/ingest", []byte(`{"relation": "ghost", "inserts": [1]}`), http.StatusNotFound},
		{"define duplicate", "POST", "/v1/relations", []byte(`{"name": "orders"}`), http.StatusConflict},
		{"drop unknown", "DELETE", "/v1/relations/ghost", nil, http.StatusNotFound},
		{"selfjoin unknown", "GET", "/v1/selfjoin?relation=ghost", nil, http.StatusNotFound},
		{"join unknown", "GET", "/v1/join?f=orders&g=ghost", nil, http.StatusNotFound},
		{"export unknown", "GET", "/v1/signatures/ghost", nil, http.StatusNotFound},
		{"import over existing", "PUT", "/v1/signatures/orders", mismatched, http.StatusConflict},
		{"import mismatched seed", "PUT", "/v1/signatures/fresh", mismatched, http.StatusConflict},
		{"merge mismatched seed", "PUT", "/v1/signatures/orders?mode=merge", mismatched, http.StatusConflict},
		{"merge unknown relation", "PUT", "/v1/signatures/ghost?mode=merge", mismatched, http.StatusNotFound},
		{"import garbage bundle", "PUT", "/v1/signatures/fresh", []byte("definitely not a blob"), http.StatusBadRequest},
		{"import unknown mode", "PUT", "/v1/signatures/fresh?mode=sideways", mismatched, http.StatusBadRequest},
		{"remote join missing param", "POST", "/v1/join/remote", mismatched, http.StatusBadRequest},
		{"remote join unknown local", "POST", "/v1/join/remote?relation=ghost", mismatched, http.StatusNotFound},
		{"remote join mismatched bundle", "POST", "/v1/join/remote?relation=orders", mismatched, http.StatusConflict},
		{"remote join garbage bundle", "POST", "/v1/join/remote?relation=orders", []byte{0xDE, 0xAD}, http.StatusBadRequest},
		{"oversized ingest body", "POST", "/v1/ingest", bigJSON, http.StatusRequestEntityTooLarge},
		{"oversized bundle upload", "PUT", "/v1/signatures/fresh", bytes.Repeat([]byte{7}, 8192), http.StatusRequestEntityTooLarge},
		{"oversized remote join body", "POST", "/v1/join/remote?relation=orders", bytes.Repeat([]byte{7}, 8192), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := do(t, tc.method, ts.URL+tc.url, "application/octet-stream", tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if eb.Error == "" {
				t.Fatal("error body has empty error field")
			}
		})
	}
}

// TestSignatureExchangeRoundTrip: export from node A → import on node B,
// merge a second partition, and one-shot remote join — all over HTTP,
// with estimates matching the engine-level answers exactly.
func TestSignatureExchangeRoundTrip(t *testing.T) {
	engA, tsA := newServer(t, 0)
	engB, err := engine.New(srvOpts())
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(amsd.NewServer(engB))
	defer tsB.Close()

	// Export "orders" from A.
	resp := do(t, "GET", tsA.URL+"/v1/signatures/orders", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export content type = %q", ct)
	}
	bundle, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Import as a new relation on B → 201.
	resp = do(t, "PUT", tsB.URL+"/v1/signatures/orders", "application/octet-stream", bundle)
	var ib amsd.ImportBody
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("import status = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ib); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ib.Mode != "import" || ib.Len != 2000 {
		t.Fatalf("import body = %+v", ib)
	}

	// Merge the same bundle once more → doubled counts, status 200.
	resp = do(t, "PUT", tsB.URL+"/v1/signatures/orders?mode=merge", "application/octet-stream", bundle)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ib); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ib.Mode != "merge" || ib.Len != 4000 {
		t.Fatalf("merge body = %+v", ib)
	}

	// One-shot remote join on A: local "items" vs the shipped bundle must
	// equal the engine's own cross-relation answer, since the bundle IS
	// A's "orders".
	resp = do(t, "POST", tsA.URL+"/v1/join/remote?relation=items", "application/octet-stream", bundle)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remote join status = %d", resp.StatusCode)
	}
	var jb amsd.JoinBody
	if err := json.NewDecoder(resp.Body).Decode(&jb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want, err := engA.EstimateJoin("items", "orders")
	if err != nil {
		t.Fatal(err)
	}
	if jb.Estimate != want.Estimate || jb.Sigma != want.Sigma {
		t.Fatalf("remote join = %+v, want %+v", jb, want)
	}
}

// TestHealthzDurability: /healthz must expose the operator-facing
// durability block — checkpoint count and age, per-relation segment
// counts — and flip to "degraded" when the oplog takes a sticky error.
func TestHealthzDurability(t *testing.T) {
	ffs := oplog.NewFaultFS(nil)
	opts := srvOpts()
	opts.Dir = t.TempDir()
	opts.FS = ffs
	eng, err := engine.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rel, err := eng.Define("orders")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rel.Insert(uint64(i))
	}
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(amsd.NewServer(eng))
	t.Cleanup(ts.Close)

	get := func() amsd.HealthzBody {
		t.Helper()
		resp := do(t, "GET", ts.URL+"/healthz", "", nil)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d", resp.StatusCode)
		}
		var hb amsd.HealthzBody
		if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
			t.Fatal(err)
		}
		return hb
	}

	hb := get()
	if hb.Status != "ok" || !hb.Durable {
		t.Fatalf("healthy body = %+v", hb)
	}
	if hb.Checkpoints < 1 || hb.LastCheckpointAgeSeconds <= 0 {
		t.Fatalf("checkpoint stats missing: %+v", hb)
	}
	if _, ok := hb.Segments["orders"]; !ok || len(hb.OplogErrors) != 0 {
		t.Fatalf("segment report = %+v", hb)
	}

	// Poison the oplog via a failing fsync; healthz must degrade and name
	// the relation.
	ffs.FailSync(errors.New("fsync: device on fire"))
	rel.Insert(1)
	_ = eng.Sync()
	_, _ = eng.Checkpoint()
	hb = get()
	if hb.Status != "degraded" {
		t.Fatalf("status after sticky error = %q, want degraded", hb.Status)
	}
	if hb.LastCheckpointError == "" && len(hb.OplogErrors) == 0 {
		t.Fatalf("degraded body carries no error detail: %+v", hb)
	}
}
