package amsd_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"amstrack/internal/amsd"
	"amstrack/internal/engine"
	"amstrack/internal/xrand"
)

func chainSrvOpts() engine.Options {
	return engine.Options{SignatureWords: 64, ChainWords: 256, Seed: 21, SketchS1: 32, SketchS2: 2}
}

// newChainServer builds an engine with the F(a) ⋈a G(a,b) ⋈b H(b)
// schema, some data, and serves it.
func newChainServer(t *testing.T, maxBody int64) (*engine.Engine, *httptest.Server) {
	t.Helper()
	eng, err := engine.New(chainSrvOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DefineSchema("f", engine.Schema{Attrs: []string{"a"}, EndA: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DefineSchema("g", engine.Schema{
		Attrs: []string{"a", "b"}, Middle: [][2]string{{"a", "b"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DefineSchema("h", engine.Schema{Attrs: []string{"b"}, EndB: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	rf, _ := eng.Get("f")
	rg, _ := eng.Get("g")
	rh, _ := eng.Get("h")
	for i := 0; i < 1500; i++ {
		rf.Insert(r.Uint64n(50))
		rg.InsertTuple(r.Uint64n(50), r.Uint64n(50))
		rh.Insert(r.Uint64n(50))
	}
	ts := httptest.NewServer(amsd.NewServerMaxBody(eng, maxBody))
	t.Cleanup(ts.Close)
	return eng, ts
}

// chainReq serializes a ChainJoinRequest body.
func chainReq(t *testing.T, req amsd.ChainJoinRequest) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChainJoinErrorPaths is the /v1/join/chain error table: unknown
// relation 404, attribute not tracked 409, mismatched chain family
// seed/k 409, oversized body 413, malformed input 400 — always a JSON
// {"error": ...} body.
func TestChainJoinErrorPaths(t *testing.T) {
	_, ts := newChainServer(t, 16384)

	// A bundle from an engine whose chain family differs (ChainWords) but
	// whose schema and pairwise shape match — exactly the "mismatched
	// chain family seed/k" row.
	foreignOpts := chainSrvOpts()
	foreignOpts.ChainWords = 128
	foreign, err := engine.New(foreignOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := foreign.DefineSchema("g", engine.Schema{
		Attrs: []string{"a", "b"}, Middle: [][2]string{{"a", "b"}}}); err != nil {
		t.Fatal(err)
	}
	fg, _ := foreign.Get("g")
	fg.InsertTuple(1, 2)
	mismatched, err := foreign.ExportRelation("g")
	if err != nil {
		t.Fatal(err)
	}

	ok := amsd.ChainJoinRequest{F: "f", AttrA: "a", G: "g", AttrB: "b", H: "h"}
	withRemoteG := ok
	withRemoteG.RemoteG = mismatched
	garbageRemote := ok
	garbageRemote.RemoteG = []byte("definitely not a blob")
	unknownRel := ok
	unknownRel.F = "ghost"
	badAttr := ok
	badAttr.AttrA = "zz"
	wrongSide := amsd.ChainJoinRequest{F: "h", AttrA: "b", G: "g", AttrB: "b", H: "h"}
	oversized := ok
	oversized.RemoteG = bytes.Repeat([]byte{9}, 32768) // over the 16 KiB cap once base64'd

	cases := []struct {
		name       string
		body       []byte
		wantStatus int
	}{
		{"malformed JSON", []byte(`{"f": [`), http.StatusBadRequest},
		{"missing params", chainReq(t, amsd.ChainJoinRequest{F: "f"}), http.StatusBadRequest},
		{"unknown relation", chainReq(t, unknownRel), http.StatusNotFound},
		{"attribute not tracked", chainReq(t, badAttr), http.StatusConflict},
		{"end declared on the other side", chainReq(t, wrongSide), http.StatusConflict},
		{"mismatched chain family k", chainReq(t, withRemoteG), http.StatusConflict},
		{"garbage remote bundle", chainReq(t, garbageRemote), http.StatusBadRequest},
		{"oversized body", chainReq(t, oversized), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := do(t, "POST", ts.URL+"/v1/join/chain", "application/json", tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if eb.Error == "" {
				t.Fatal("error body has empty error field")
			}
		})
	}
}

// TestChainJoinHappyPath: the HTTP answer equals the engine's own, and
// the remote_* merge path equals a single engine holding both halves.
func TestChainJoinHappyPath(t *testing.T) {
	eng, ts := newChainServer(t, 0)
	body := chainReq(t, amsd.ChainJoinRequest{F: "f", AttrA: "a", G: "g", AttrB: "b", H: "h"})
	resp := do(t, "POST", ts.URL+"/v1/join/chain", "application/json", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var cb amsd.ChainJoinBody
	if err := json.NewDecoder(resp.Body).Decode(&cb); err != nil {
		t.Fatal(err)
	}
	want, err := eng.EstimateChainJoin("f", "a", "g", "b", "h")
	if err != nil {
		t.Fatal(err)
	}
	if cb.Estimate != want.Estimate || cb.Sigma != want.Sigma || cb.Upper != want.Upper ||
		cb.SJF != want.SJF || cb.SJG != want.SJG || cb.SJH != want.SJH || cb.K != want.K {
		t.Fatalf("HTTP chain answer %+v != engine %+v", cb, want)
	}
	if cb.Estimate == 0 || cb.Sigma <= 0 {
		t.Fatalf("degenerate chain answer: %+v", cb)
	}
}

// TestChainSchemaDefineAndIngestHTTP: schema declaration and tuple
// ingest over HTTP, including the arity 400s and the signature exchange
// carrying chain sections.
func TestChainSchemaDefineAndIngestHTTP(t *testing.T) {
	eng, ts := newChainServer(t, 0)

	// Define a schema'd relation over HTTP.
	resp := do(t, "POST", ts.URL+"/v1/relations", "application/json",
		[]byte(`{"name": "g2", "attrs": ["x", "y"], "chain_a": ["x"], "chain_b": ["y"], "chain_ab": [["x", "y"]]}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("define status = %d", resp.StatusCode)
	}
	var db amsd.DefineBody
	if err := json.NewDecoder(resp.Body).Decode(&db); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(db.Attrs) != 2 || db.Attrs[0] != "x" {
		t.Fatalf("define body = %+v", db)
	}
	// Malformed chain_ab entry → 400.
	resp = do(t, "POST", ts.URL+"/v1/relations", "application/json",
		[]byte(`{"name": "g3", "attrs": ["x"], "chain_ab": [["x"]]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lopsided chain_ab status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Tuple ingest; response Len counts rows.
	resp = do(t, "POST", ts.URL+"/v1/ingest", "application/json",
		[]byte(`{"relation": "g2", "insert_rows": [[1,2],[3,4],[1,2]], "delete_rows": [[1,2]]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tuple ingest status = %d", resp.StatusCode)
	}
	var ib amsd.IngestBody
	if err := json.NewDecoder(resp.Body).Decode(&ib); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ib.Inserted != 3 || ib.Deleted != 1 || ib.Len != 2 {
		t.Fatalf("tuple ingest body = %+v", ib)
	}

	// Plain values on a multi-attribute relation → 400; wrong-width row → 400.
	for _, body := range []string{
		`{"relation": "g2", "inserts": [1]}`,
		`{"relation": "g2", "insert_rows": [[1]]}`,
		`{"relation": "g2", "delete_rows": [[1,2,3]]}`,
	} {
		resp = do(t, "POST", ts.URL+"/v1/ingest", "application/json", []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("arity-mismatched ingest %s → status %d", body, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The exported bundle round-trips the chain section over HTTP.
	resp = do(t, "GET", ts.URL+"/v1/signatures/g", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	bundle := new(bytes.Buffer)
	if _, err := bundle.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	engB, err := engine.New(chainSrvOpts())
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(amsd.NewServer(engB))
	defer tsB.Close()
	resp = do(t, "PUT", tsB.URL+"/v1/signatures/g", "application/octet-stream", bundle.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("import status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	got, err := engB.ExportRelation("g")
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.ExportRelation("g")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chain bundle did not round-trip byte-identically over HTTP")
	}
}
