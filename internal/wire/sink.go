package wire

import "amstrack/internal/engine"

// Sink is the destination a wire server stages batches into. The amsd
// daemon plugs the engine in directly (EngineSink); the ingest-router
// daemon plugs its routing core in, so upstream clients speak the exact
// same protocol to a router that they would to a single node. The
// server's ACK contract is defined in terms of this interface: an ACK is
// sent only after Apply has accepted the batch AND Drain has returned
// nil for every relation the acked window touched — whatever "durable"
// means for the sink (OS-owned oplog records for an engine, downstream
// node ACKs for a router), an acked batch has reached it.
type Sink interface {
	// IngestMode names the write path for the WELCOME frame ("locked",
	// "absorber", or a sink-specific label such as "routed").
	IngestMode() string
	// Relation resolves a relation by name. The server caches the result
	// per connection, so implementations may return a stateful
	// per-stream handle; returned values must be comparable (the ack
	// coalescer dedups touched relations by equality).
	Relation(name string) (SinkRelation, error)
}

// SinkRelation is one relation's staging surface within a Sink.
type SinkRelation interface {
	Name() string
	Arity() int
	// Apply stages one batch. vals is the server's decode scratch,
	// row-major (rows×arity), reused for the next frame: an
	// implementation that retains the values past the call must copy
	// them. A non-nil error is terminal for the stream.
	Apply(del bool, arity int, vals []uint64) error
	// Drain is the ack barrier: after it returns nil, every batch
	// Apply accepted before the call is durable in the sink's terms.
	Drain() error
}

// EngineSink adapts an engine to the Sink interface — the classic amsd
// wiring, staging straight into the absorber (or the locked path) with
// Relation.Drain as the barrier.
func EngineSink(eng *engine.Engine) Sink { return engineSink{eng} }

type engineSink struct{ eng *engine.Engine }

func (s engineSink) IngestMode() string { return s.eng.Options().IngestMode.String() }

func (s engineSink) Relation(name string) (SinkRelation, error) {
	rel, err := s.eng.Get(name)
	if err != nil {
		return nil, err
	}
	return &engineRel{rel: rel, arity: rel.Arity()}, nil
}

// engineRel caches the relation handle and arity per connection and owns
// the row-splitting scratch, so steady-state tuple batches allocate
// nothing per frame.
type engineRel struct {
	rel   *engine.Relation
	arity int
	rows  [][]uint64
}

func (r *engineRel) Name() string { return r.rel.Name() }
func (r *engineRel) Arity() int   { return r.arity }

func (r *engineRel) Apply(del bool, arity int, vals []uint64) error {
	if arity == 1 {
		// Deletes can fail synchronously: in locked mode the sticky
		// durability error surfaces on the spot (absorber mode reports
		// the same failure at the drain). Either way it goes back as an
		// ERROR frame naming the relation, matching HTTP ingest.
		if del {
			return r.rel.DeleteBatch(vals)
		}
		r.rel.InsertBatch(vals)
		return nil
	}
	rows := r.rows[:0]
	for i := 0; i+arity <= len(vals); i += arity {
		rows = append(rows, vals[i:i+arity])
	}
	r.rows = rows
	if del {
		return r.rel.DeleteTupleBatch(rows)
	}
	r.rel.InsertTupleBatch(rows)
	return nil
}

func (r *engineRel) Drain() error { return r.rel.Drain() }
