// Package wire is amswire, the streaming binary ingest protocol — the
// serving-layer counterpart of the engine's lock-free write path. PR 4
// dropped durable single-writer ingest to ~240 ns/op, but the only road
// onto that path from the network was POST /v1/ingest: one HTTP request,
// one JSON decode, and one read-your-writes drain per batch. amswire
// replaces that with a long-lived TCP stream of length-prefixed binary
// frames: a client pipelines INSERT/DELETE batch frames without waiting,
// the server stages them straight into the absorber and acknowledges
// batch sequence numbers asynchronously, and a FLUSH frame buys the
// read-your-writes barrier only when the loader actually wants it.
//
// The protocol is stdlib-only (the module has zero dependencies and must
// stay buildable offline — no gRPC) and reuses the repository's one
// framing discipline: every frame body is an internal/blob envelope,
// magic|version|payload|CRC32, under blob.MagicWireFrame. On the stream
// each frame is preceded by a uint32 LE byte length, so a reader can
// skip, buffer, or reject a frame before decoding it.
//
// Stream layout (client dials, then strictly: HELLO → WELCOME → data):
//
//	client → server  HELLO    proto version + requested ack window
//	server → client  WELCOME  proto version + engine ingest mode
//	client → server  BATCH*   seq, ins/del, arity-tagged rows, values
//	client → server  FLUSH    force an immediate drain + ACK (read-your-writes)
//	server → client  ACK*     cumulative: every batch seq ≤ Seq is staged,
//	                          applied, and handed to the OS-owned log buffer
//	server → client  ERROR    terminal; names the relation when one is at fault
//	server → client  GOODBYE  daemon shutting down; no further ACKs will come
//
// BATCH frames mirror the oplog record shapes: arity 1 carries the v1
// single-attribute ops (kind 0/1), arity 2..255 carries the v3/v4
// arity-tagged tuple rows, values primary-attribute-first in schema
// order. An ACK is cumulative and means more than "received": the server
// drains the touched relations through the absorber before acking, so
// every acked batch is applied to the synopses and its oplog records are
// OS-owned — a kill -9 after an ACK cannot lose the batch (the same
// guarantee locked-mode HTTP ingest gives per request, amortized here
// over a pipeline window). DESIGN.md §10 documents the layout, the
// ack/window semantics, and operator tuning.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"amstrack/internal/blob"
)

// ProtoVersion is the amswire protocol version carried in HELLO/WELCOME.
// A server rejects a client whose version it does not speak.
const ProtoVersion = 1

// frameVersion is the blob-envelope version of every frame body.
const frameVersion = 1

// MaxFrame caps one frame body's byte length (the uint32 stream prefix):
// large enough for a ~2M-value batch, small enough that a hostile length
// prefix cannot balloon the process. Batches beyond it must be split
// (wire.Client splits transparently).
const MaxFrame = 16 << 20

// DefaultWindow is the ack window a client uses when Options.Window is
// zero: up to this many batches may be in flight (sent, not yet acked)
// per connection before InsertBatch blocks.
const DefaultWindow = 64

// MaxArity mirrors the oplog tuple-record bound: row arity is encoded in
// one byte and arity 0 is invalid.
const MaxArity = 255

// Kind discriminates frame payloads.
type Kind uint8

const (
	KindHello Kind = iota + 1
	KindWelcome
	KindBatch
	KindFlush
	KindAck
	KindError
	KindGoodbye
)

// String returns the conventional frame name.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "HELLO"
	case KindWelcome:
		return "WELCOME"
	case KindBatch:
		return "BATCH"
	case KindFlush:
		return "FLUSH"
	case KindAck:
		return "ACK"
	case KindError:
		return "ERROR"
	case KindGoodbye:
		return "GOODBYE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Frame is the decoded union of every frame type; Kind says which fields
// are meaningful. One struct (instead of a type per frame) lets readers
// reuse a single Frame — and its Vals backing array — across frames,
// which is what keeps the batch hot path allocation-free.
//
//	HELLO:   Proto, Window
//	WELCOME: Proto, Text (engine ingest mode)
//	BATCH:   Seq, Del, Arity, Relation, Vals (rows×arity values, row-major,
//	         primary attribute first within each row)
//	FLUSH:   Seq (the client's last sent batch seq)
//	ACK:     Seq (cumulative: all batches ≤ Seq are staged + OS-owned)
//	ERROR:   Seq, Relation (may be empty), Text (message)
//	GOODBYE: Text (reason)
type Frame struct {
	Kind     Kind
	Seq      uint64
	Proto    uint32
	Window   uint32
	Del      bool
	Arity    int
	Relation string
	Vals     []uint64
	Text     string
}

// Rows returns the batch's row count (Vals is row-major).
func (f *Frame) Rows() int {
	if f.Arity <= 0 {
		return 0
	}
	return len(f.Vals) / f.Arity
}

// Decode errors beyond the blob envelope's own sentinels.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// batchFlags bit 0 marks a delete batch; all other bits are reserved and
// rejected on decode so every accepted frame re-encodes byte-identically.
const flagDel = 0x01

// AppendFrame appends f's wire image — uint32 LE length prefix followed
// by the blob-framed body — to dst and returns the extended slice. It is
// the one encoder: append-only, no intermediate buffers, so a caller
// reusing dst encodes a BATCH with zero allocations beyond amortized
// slice growth.
func AppendFrame(dst []byte, f *Frame) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	body := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, blob.MagicWireFrame)
	dst = append(dst, frameVersion)
	dst = append(dst, byte(f.Kind))
	switch f.Kind {
	case KindHello:
		dst = binary.LittleEndian.AppendUint32(dst, f.Proto)
		dst = binary.LittleEndian.AppendUint32(dst, f.Window)
	case KindWelcome:
		dst = binary.LittleEndian.AppendUint32(dst, f.Proto)
		dst = appendString(dst, f.Text)
	case KindBatch:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		var flags byte
		if f.Del {
			flags |= flagDel
		}
		dst = append(dst, flags, byte(f.Arity))
		dst = appendString(dst, f.Relation)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Rows()))
		for _, v := range f.Vals {
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	case KindFlush, KindAck:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	case KindError:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		dst = appendString(dst, f.Relation)
		dst = appendString(dst, f.Text)
	case KindGoodbye:
		dst = appendString(dst, f.Text)
	default:
		panic(fmt.Sprintf("wire: encoding unknown frame kind %d", f.Kind))
	}
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[body:]))
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-body))
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// EncodeFrame returns f's blob-framed body WITHOUT the stream length
// prefix — the unit the fuzzer round-trips and tests compare.
func EncodeFrame(f *Frame) []byte {
	full := AppendFrame(nil, f)
	return full[4:]
}

// DecodeFrame parses one blob-framed body into f, reusing f.Vals'
// capacity. Corrupt, truncated, foreign-magic, over-long, or
// trailing-byte inputs error (wrapping the blob sentinels or
// ErrBadFrame); an accepted frame re-encodes byte-identically via
// EncodeFrame. Relation and Text are copied out of data, so the caller
// may reuse its read buffer; Vals aliases nothing either.
func DecodeFrame(data []byte, f *Frame) error {
	if len(data) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(data))
	}
	_, payload, err := blob.Open(blob.MagicWireFrame, frameVersion, data)
	if err != nil {
		return err
	}
	c := blob.NewCursor(payload)
	kb := c.U8()
	*f = Frame{Kind: Kind(kb), Vals: f.Vals[:0]}
	switch f.Kind {
	case KindHello:
		f.Proto = c.U32()
		f.Window = c.U32()
	case KindWelcome:
		f.Proto = c.U32()
		f.Text = c.String()
	case KindBatch:
		f.Seq = c.U64()
		flags := c.U8()
		if flags&^byte(flagDel) != 0 {
			return fmt.Errorf("%w: reserved batch flags %#x", ErrBadFrame, flags)
		}
		f.Del = flags&flagDel != 0
		f.Arity = int(c.U8())
		f.Relation = c.String()
		rows := int(c.U32())
		if err := c.Err(); err != nil {
			return err
		}
		if f.Arity < 1 {
			return fmt.Errorf("%w: batch arity 0", ErrBadFrame)
		}
		if f.Relation == "" {
			return fmt.Errorf("%w: batch without relation", ErrBadFrame)
		}
		n := rows * f.Arity
		if c.Remaining() != 8*n {
			return fmt.Errorf("%w: %d rows × arity %d needs %d value bytes, have %d",
				ErrBadFrame, rows, f.Arity, 8*n, c.Remaining())
		}
		if cap(f.Vals) < n {
			f.Vals = make([]uint64, 0, n)
		}
		f.Vals = f.Vals[:n]
		for i := range f.Vals {
			f.Vals[i] = c.U64()
		}
	case KindFlush, KindAck:
		f.Seq = c.U64()
	case KindError:
		f.Seq = c.U64()
		f.Relation = c.String()
		f.Text = c.String()
	case KindGoodbye:
		f.Text = c.String()
	default:
		return fmt.Errorf("%w: unknown frame kind %d", ErrBadFrame, kb)
	}
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}

// ReadFrame reads one length-prefixed frame body from r into buf
// (growing it as needed) and returns the body slice, which aliases buf.
// io.EOF is returned verbatim only when the stream ends cleanly between
// frames; a tear inside a frame is io.ErrUnexpectedEOF. Exported so
// other speakers of the protocol (the ingest router's node sessions)
// can reuse the one framing reader instead of reimplementing it.
func ReadFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: length prefix %d", ErrFrameTooLarge, n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return b, nil
}
