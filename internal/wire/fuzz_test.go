package wire

import (
	"bytes"
	"testing"
)

// FuzzWireFrame drives DecodeFrame with arbitrary bytes. Two properties:
//
//  1. Robustness — corrupt, truncated, foreign-magic, or hostile-length
//     inputs must error, never panic (the daemon decodes these straight
//     off a public TCP socket).
//  2. Canonical form — any input DecodeFrame accepts must re-marshal
//     byte-identically via EncodeFrame. This is what lets recovery and
//     replication reason about frames by their bytes: there is exactly
//     one wire image per logical frame.
func FuzzWireFrame(f *testing.F) {
	seeds := frameTable()
	for i := range seeds {
		f.Add(EncodeFrame(&seeds[i]))
	}
	// Off-spec seeds steer the mutator toward the rejection branches.
	f.Add([]byte{})
	f.Add(EncodeFrame(&seeds[0])[:5])
	f.Add(sealBatch(0x80, 3, "rel", 2))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := DecodeFrame(data, &fr); err != nil {
			return // rejected: that is a fine outcome, as long as we got here
		}
		if !bytes.Equal(EncodeFrame(&fr), data) {
			t.Fatalf("accepted frame %v does not re-marshal byte-identically", fr.Kind)
		}
	})
}
