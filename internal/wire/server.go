package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"amstrack/internal/engine"
)

// Server speaks amswire on a listener and feeds one Sink — an engine in
// the amsd daemon, the routing core in the router daemon. Each
// accepted connection runs two goroutines: a reader that decodes frames
// and stages batches into the sink (for an engine, the absorber staging
// path — no locks, no JSON), and an acker that owns the connection's
// write side.
// The acker coalesces: it drains every relation the pending batches
// touched ONCE, then acks the highest staged sequence number, so the
// drain barrier (apply + hand oplog records to the OS) amortizes over
// however many batches arrived while the previous drain ran. Under a
// saturating client that is the whole pipeline win; under a trickling
// client every batch is acked individually, matching HTTP semantics.
//
// Close stops accepting, sends GOODBYE on every open stream, and waits
// for the per-connection goroutines — after it returns no wire traffic
// can reach the engine, which is what lets the daemon's final-checkpoint
// path (PR 6) extend to open streams.
type Server struct {
	sink Sink

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Monotonic counters for /healthz.
	totalConns atomic.Int64
	openConns  atomic.Int64
	batches    atomic.Int64
	rows       atomic.Int64
	flushes    atomic.Int64
	frameErrs  atomic.Int64
}

// Stats is a point-in-time snapshot of the wire listener's counters.
type Stats struct {
	Conns      int64 // currently open streams
	TotalConns int64 // streams accepted since startup
	Batches    int64 // batch frames staged
	Rows       int64 // rows across those batches
	Flushes    int64 // explicit FLUSH barriers served
	Errors     int64 // connections torn down by protocol or engine errors
}

// NewServer builds a wire server over eng.
func NewServer(eng *engine.Engine) *Server { return NewServerSink(EngineSink(eng)) }

// NewServerSink builds a wire server over an arbitrary Sink.
func NewServerSink(sink Sink) *Server {
	return &Server{sink: sink, conns: map[*srvConn]struct{}{}}
}

// Stats returns the current counter snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:      s.openConns.Load(),
		TotalConns: s.totalConns.Load(),
		Batches:    s.batches.Load(),
		Rows:       s.rows.Load(),
		Flushes:    s.flushes.Load(),
		Errors:     s.frameErrs.Load(),
	}
}

// ErrServerClosed is returned by Serve after Close, mirroring
// http.ErrServerClosed so callers can tell shutdown from failure.
var ErrServerClosed = errors.New("wire: server closed")

// recvBuf bounds each stream's kernel receive buffer. A pipelining
// client can burst a full window of batch frames while the reader
// goroutine is descheduled; with buffer autotuning the kernel grows the
// queue, hits its memory allowance, and starts collapsing and PRUNING
// delivered segments — which the client then retransmits after a
// ~200 ms RTO, collapsing throughput ~50x on a loaded box. A fixed
// bound keeps the backpressure in TCP flow control (zero-window, reopens
// the instant the reader catches up) instead of in loss recovery.
const recvBuf = 256 << 10

// handshakeTimeout bounds the wait for a client's HELLO. Before the
// handshake completes the connection has no ack loop and therefore no
// goroutine watching the shutdown signal, so an idle pre-HELLO stream
// must be reaped by deadline or it would wedge Close's wg.Wait.
const handshakeTimeout = 10 * time.Second

// closeGrace bounds how long Close lets in-flight I/O finish. The
// GOODBYE write gets this long to reach each client; a connection parked
// in handshake or an acker blocked writing to a client that stopped
// reading hits the deadline and tears down, so Close always returns.
const closeGrace = 2 * time.Second

// Serve accepts streams on ln until Close (→ ErrServerClosed) or a
// listener error. One Serve per Server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(recvBuf)
		}
		c := &srvConn{srv: s, nc: nc, acks: make(chan ackMsg, 256),
			bye: make(chan struct{}), ackerGone: make(chan struct{})}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.totalConns.Add(1)
		s.openConns.Add(1)
		go c.run()
	}
}

// Close stops accepting, sends GOODBYE to every open stream, closes
// them, and waits for the connection goroutines to finish. Every stream
// gets closeGrace to finish in-flight I/O: a deadline on the conn
// guarantees that readers parked in handshake and ackers blocked writing
// to stalled clients unblock, so Close cannot hang on a wedged peer.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	deadline := time.Now().Add(closeGrace)
	for c := range s.conns {
		c.sayGoodbye()
		_ = c.nc.SetDeadline(deadline)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ackMsg is one reader→acker handoff: a staged batch to acknowledge, a
// FLUSH barrier to serve (seq = last staged batch, no relation), or a
// terminal error to report before closing.
type ackMsg struct {
	seq    uint64
	rel    SinkRelation // staged batch: drain before acking
	err    error        // terminal: send ERROR and tear down
	errRel string       // relation at fault, "" for connection-level errors
}

// srvConn is one accepted stream.
type srvConn struct {
	srv  *Server
	nc   net.Conn
	acks chan ackMsg

	byeOnce sync.Once
	bye     chan struct{}
	// ackerGone is closed when the ack loop exits, unblocking reader
	// sends so a dead write side cannot wedge the read side.
	ackerGone chan struct{}
}

// sayGoodbye asks the acker to emit GOODBYE and tear the stream down.
func (c *srvConn) sayGoodbye() { c.byeOnce.Do(func() { close(c.bye) }) }

// run drives one connection: handshake, then reader + acker until either
// side errors or the server shuts down.
func (c *srvConn) run() {
	defer func() {
		_ = c.nc.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		c.srv.openConns.Add(-1)
		c.srv.wg.Done()
	}()

	if err := c.handshake(); err != nil {
		c.srv.frameErrs.Add(1)
		return
	}

	go func() {
		c.ackLoop()
		close(c.ackerGone)
		// Unblock a reader parked in a socket read: with the write side
		// dead there will be no more ACKs, so the stream is over.
		_ = c.nc.Close()
	}()
	c.readLoop()
	// The reader is finished (EOF, error, or a terminal ackMsg was sent);
	// closing the channel lets the acker flush what it has and exit.
	close(c.acks)
	<-c.ackerGone
}

// send hands one message to the ack loop; false means the write side is
// already gone and the reader should stop.
func (c *srvConn) send(m ackMsg) bool {
	select {
	case c.acks <- m:
		return true
	case <-c.ackerGone:
		return false
	}
}

// handshake reads HELLO and answers WELCOME with the engine's resolved
// ingest mode, so a client can verify which write path its stream feeds.
// The read is bounded by handshakeTimeout — until the ack loop exists
// nothing else can reap an idle connection.
func (c *srvConn) handshake() error {
	_ = c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var buf []byte
	body, err := ReadFrame(c.nc, &buf)
	if err != nil {
		return err
	}
	_ = c.nc.SetReadDeadline(time.Time{})
	var f Frame
	if err := DecodeFrame(body, &f); err != nil {
		return err
	}
	if f.Kind != KindHello {
		return fmt.Errorf("%w: expected HELLO, got %v", ErrBadFrame, f.Kind)
	}
	if f.Proto != ProtoVersion {
		c.writeFrame(&Frame{Kind: KindError, Text: fmt.Sprintf("unsupported protocol version %d (server speaks %d)", f.Proto, ProtoVersion)})
		return fmt.Errorf("%w: protocol version %d", ErrBadFrame, f.Proto)
	}
	return c.writeFrame(&Frame{
		Kind:  KindWelcome,
		Proto: ProtoVersion,
		Text:  c.srv.sink.IngestMode(),
	})
}

// writeFrame encodes and writes one frame. Only the handshake and the
// acker call it, so writes are single-goroutine by construction.
func (c *srvConn) writeFrame(f *Frame) error {
	_, err := c.nc.Write(AppendFrame(nil, f))
	return err
}

// readLoop decodes and stages frames until the stream ends or a frame is
// terminal. Decode scratch (read buffer, Frame.Vals, the row slice) is
// reused across frames: the sink's batch paths copy staged ops before
// returning, so aliasing the scratch is safe and the per-row cost is
// pure encoding — no allocation, no syscall beyond the read itself.
// Sink relations are cached per connection, so steady-state batches skip
// the sink's catalog lookup.
func (c *srvConn) readLoop() {
	var (
		buf  []byte
		f    Frame
		rels = map[string]SinkRelation{}
		last uint64
	)
	fail := func(seq uint64, rel string, err error) {
		c.srv.frameErrs.Add(1)
		c.send(ackMsg{seq: seq, err: err, errRel: rel})
	}
	for {
		body, err := ReadFrame(c.nc, &buf)
		if err != nil {
			// EOF between frames is the client hanging up; anything else
			// (tear mid-frame, oversized prefix, socket error) is already
			// terminal — either way the stream is done and there is nobody
			// left to send an ERROR to.
			if err != io.EOF {
				c.srv.frameErrs.Add(1)
			}
			return
		}
		if err := DecodeFrame(body, &f); err != nil {
			fail(last, "", err)
			return
		}
		switch f.Kind {
		case KindBatch:
			if f.Seq <= last {
				fail(last, "", fmt.Errorf("%w: batch seq %d after %d", ErrBadFrame, f.Seq, last))
				return
			}
			last = f.Seq
			ent, ok := rels[f.Relation]
			if !ok {
				var err error
				if ent, err = c.srv.sink.Relation(f.Relation); err != nil {
					fail(f.Seq, f.Relation, err)
					return
				}
				rels[f.Relation] = ent
			}
			if f.Arity != ent.Arity() {
				fail(f.Seq, f.Relation, fmt.Errorf("%w: batch arity %d, relation %q has arity %d",
					ErrBadFrame, f.Arity, f.Relation, ent.Arity()))
				return
			}
			// A synchronous Apply failure (a locked-mode sticky
			// durability error, a router with every target down) goes
			// back as an ERROR frame naming the relation, matching the
			// HTTP ingest path's semantics.
			if err := ent.Apply(f.Del, f.Arity, f.Vals); err != nil {
				fail(f.Seq, f.Relation, err)
				return
			}
			c.srv.batches.Add(1)
			c.srv.rows.Add(int64(f.Rows()))
			if !c.send(ackMsg{seq: f.Seq, rel: ent}) {
				return
			}
		case KindFlush:
			// The barrier rides the ordinary ack path: a relation-less
			// message at the last staged seq forces the acker through a
			// drain round, and the resulting ACK of `last` covers every
			// batch sent before the FLUSH — exactly read-your-writes.
			c.srv.flushes.Add(1)
			if !c.send(ackMsg{seq: last}) {
				return
			}
		case KindGoodbye:
			// A polite client hanging up; nothing to do.
			return
		default:
			fail(last, "", fmt.Errorf("%w: unexpected %v from client", ErrBadFrame, f.Kind))
			return
		}
	}
}

// ackLoop owns the write side: it gathers pending ackMsgs (all that are
// immediately available — the coalescing window), drains each touched
// relation once, and acks the highest staged seq. A drain error is the
// relation's sticky oplog failure: it is reported as ERROR naming the
// relation and the stream is torn down — the client must know its
// pipeline's tail may not be durable. On server shutdown the loop sends
// GOODBYE instead of further ACKs.
func (c *srvConn) ackLoop() {
	var (
		touched []SinkRelation
		top     uint64
		have    bool
	)
	for {
		var (
			m  ackMsg
			ok bool
		)
		select {
		case <-c.bye:
			_ = c.writeFrame(&Frame{Kind: KindGoodbye, Text: "server shutting down"})
			return
		case m, ok = <-c.acks:
			if !ok {
				return
			}
		}
		touched = touched[:0]
		have = false
	gather:
		for {
			if m.err != nil {
				// Ack what is already staged and drained? No — the error
				// arrived after those batches; drain first so earlier
				// batches are honestly acked, then report.
				if have {
					if rel, err := c.drainAll(touched); err != nil {
						_ = c.writeFrame(&Frame{Kind: KindError, Seq: top, Relation: rel, Text: err.Error()})
						return
					}
					if err := c.writeFrame(&Frame{Kind: KindAck, Seq: top}); err != nil {
						return
					}
				}
				_ = c.writeFrame(&Frame{Kind: KindError, Seq: m.seq, Relation: m.errRel, Text: m.err.Error()})
				return
			}
			if m.rel != nil {
				if !containsRel(touched, m.rel) {
					touched = append(touched, m.rel)
				}
			}
			if m.seq > top {
				top = m.seq
			}
			have = true
			select {
			case m, ok = <-c.acks:
				if !ok {
					break gather
				}
			default:
				break gather
			}
		}
		if !have {
			continue
		}
		if rel, err := c.drainAll(touched); err != nil {
			c.srv.frameErrs.Add(1)
			_ = c.writeFrame(&Frame{Kind: KindError, Seq: top, Relation: rel, Text: err.Error()})
			return
		}
		if err := c.writeFrame(&Frame{Kind: KindAck, Seq: top}); err != nil {
			return
		}
		if !ok {
			return
		}
	}
}

// drainAll drains every touched relation; the first failure names it.
func (c *srvConn) drainAll(rels []SinkRelation) (string, error) {
	for _, r := range rels {
		if err := r.Drain(); err != nil {
			return r.Name(), err
		}
	}
	return "", nil
}

func containsRel(rels []SinkRelation, r SinkRelation) bool {
	for _, x := range rels {
		if x == r {
			return true
		}
	}
	return false
}
