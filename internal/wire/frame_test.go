package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"amstrack/internal/blob"
)

// frameTable is one frame of every kind, fields exercised asymmetrically
// so a transposed field cannot round-trip by accident.
func frameTable() []Frame {
	return []Frame{
		{Kind: KindHello, Proto: ProtoVersion, Window: 128},
		{Kind: KindWelcome, Proto: ProtoVersion, Text: "absorber"},
		{Kind: KindBatch, Seq: 7, Arity: 1, Relation: "r", Vals: []uint64{1, 2, 3}},
		{Kind: KindBatch, Seq: 8, Del: true, Arity: 1, Relation: "orders", Vals: []uint64{42}},
		{Kind: KindBatch, Seq: 9, Arity: 3, Relation: "t", Vals: []uint64{1, 2, 3, 4, 5, 6}},
		{Kind: KindBatch, Seq: 10, Arity: 2, Relation: "empty/ok", Vals: nil},
		{Kind: KindFlush, Seq: 11},
		{Kind: KindAck, Seq: 12},
		{Kind: KindError, Seq: 13, Relation: "r", Text: "oplog: injected crash"},
		{Kind: KindError, Text: "protocol violation"},
		{Kind: KindGoodbye, Text: "server shutting down"},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, want := range frameTable() {
		enc := EncodeFrame(&want)
		var got Frame
		if err := DecodeFrame(enc, &got); err != nil {
			t.Fatalf("%v: decode: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Proto != want.Proto ||
			got.Window != want.Window || got.Del != want.Del ||
			got.Relation != want.Relation || got.Text != want.Text {
			t.Fatalf("%v: decoded %+v, want %+v", want.Kind, got, want)
		}
		if want.Kind == KindBatch {
			if got.Arity != want.Arity {
				t.Fatalf("%v: arity %d, want %d", want.Kind, got.Arity, want.Arity)
			}
			if len(got.Vals) != len(want.Vals) {
				t.Fatalf("%v: %d vals, want %d", want.Kind, len(got.Vals), len(want.Vals))
			}
			for i := range want.Vals {
				if got.Vals[i] != want.Vals[i] {
					t.Fatalf("%v: val[%d] = %d, want %d", want.Kind, i, got.Vals[i], want.Vals[i])
				}
			}
		}
		// Canonical: an accepted frame re-encodes byte-identically.
		if re := EncodeFrame(&got); !bytes.Equal(re, enc) {
			t.Fatalf("%v: re-encode differs (%d vs %d bytes)", want.Kind, len(re), len(enc))
		}
	}
}

// TestDecodeFrameValsReuse verifies the decode path reuses the caller's
// Vals capacity — the property the server's hot loop depends on.
func TestDecodeFrameValsReuse(t *testing.T) {
	f := Frame{Vals: make([]uint64, 0, 64)}
	backing := &f.Vals[:1][0]
	enc := EncodeFrame(&Frame{Kind: KindBatch, Seq: 1, Arity: 1, Relation: "r", Vals: []uint64{9, 8, 7}})
	if err := DecodeFrame(enc, &f); err != nil {
		t.Fatal(err)
	}
	if &f.Vals[0] != backing {
		t.Fatal("decode reallocated Vals despite sufficient capacity")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := EncodeFrame(&Frame{Kind: KindBatch, Seq: 1, Arity: 2, Relation: "r", Vals: []uint64{1, 2, 3, 4}})
	flip := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error // nil: any error accepted
	}{
		{"empty", nil, blob.ErrTooShort},
		{"truncated body", good[:len(good)-9], nil},
		{"corrupt payload byte", flip(func(b []byte) { b[10] ^= 0x40 }), blob.ErrChecksum},
		{"corrupt crc", flip(func(b []byte) { b[len(b)-1] ^= 1 }), blob.ErrChecksum},
		{"foreign magic", reseal(t, blob.MagicRelBundle, good), blob.ErrMagic},
		{"future version", blob.Seal(blob.MagicWireFrame, 9, []byte{byte(KindAck), 0, 0, 0, 0, 0, 0, 0, 0}), blob.ErrVersion},
		{"unknown kind", blob.Seal(blob.MagicWireFrame, frameVersion, []byte{0xEE}), ErrBadFrame},
		{"reserved batch flags", sealBatch(0x02, 1, "r", 1), ErrBadFrame},
		{"arity zero", sealBatch(0, 0, "r", 0), ErrBadFrame},
		{"no relation", sealBatch(0, 1, "", 1), ErrBadFrame},
		{"row count vs values mismatch", sealBatch(0, 2, "r", 3), ErrBadFrame},
		{"trailing bytes", blob.Seal(blob.MagicWireFrame, frameVersion,
			append([]byte{byte(KindAck)}, make([]byte, 12)...)), blob.ErrTrailing},
		{"truncated ack", blob.Seal(blob.MagicWireFrame, frameVersion, []byte{byte(KindAck), 1, 2}), blob.ErrTruncated},
	}
	for _, tc := range cases {
		var f Frame
		err := DecodeFrame(tc.data, &f)
		if err == nil {
			t.Fatalf("%s: decode accepted", tc.name)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Fatalf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}
}

// reseal re-frames a valid frame body under a different magic with a
// valid CRC, so only the magic check can reject it.
func reseal(t *testing.T, magic uint32, framed []byte) []byte {
	t.Helper()
	_, payload, err := blob.Open(blob.MagicWireFrame, frameVersion, framed)
	if err != nil {
		t.Fatal(err)
	}
	return blob.Seal(magic, frameVersion, payload)
}

// sealBatch hand-builds a BATCH payload with the given flags/arity/rows
// header over exactly `rows` single values — used to express header
// combinations the encoder refuses to produce.
func sealBatch(flags, arity byte, rel string, rows uint32) []byte {
	b := blob.NewBuilder(blob.MagicWireFrame, frameVersion, 64)
	b.U8(byte(KindBatch))
	b.U64(1) // seq
	b.U8(flags)
	b.U8(arity)
	b.String(rel)
	b.U32(rows)
	for i := uint32(0); i < rows; i++ {
		b.U64(uint64(i))
	}
	return b.Seal()
}

func TestReadFrame(t *testing.T) {
	var stream []byte
	want := frameTable()
	for i := range want {
		stream = AppendFrame(stream, &want[i])
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i := range want {
		body, err := ReadFrame(r, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var f Frame
		if err := DecodeFrame(body, &f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Kind != want[i].Kind {
			t.Fatalf("frame %d: kind %v, want %v", i, f.Kind, want[i].Kind)
		}
	}
	if _, err := ReadFrame(r, &buf); err != io.EOF {
		t.Fatalf("clean end: %v, want io.EOF", err)
	}

	// A tear inside a frame is ErrUnexpectedEOF, not a clean EOF.
	if _, err := ReadFrame(bytes.NewReader(stream[:7]), &buf); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: %v, want io.ErrUnexpectedEOF", err)
	}

	// A hostile length prefix is rejected before any allocation.
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge[:]), &buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized prefix: %v, want ErrFrameTooLarge", err)
	}
}
