package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"amstrack/internal/xrand"
)

// Options tunes a Client. The zero value is usable: one connection, the
// default ack window, and a jittered-backoff redial policy.
type Options struct {
	// Conns is the connection-pool size (0 → 1). Batches are spread
	// round-robin; batches on different connections have no ordering
	// relative to each other, which is safe for synopsis ingest because
	// updates commute (linearity) — use one connection if the stream
	// interleaves inserts and deletes of the same tuples and order
	// matters for exact intermediate counts.
	Conns int
	// Window is the per-connection ack window (0 → DefaultWindow): up to
	// this many batches may be in flight before the next send blocks.
	Window int
	// DialTimeout bounds each dial attempt (0 → 5s).
	DialTimeout time.Duration
	// RetryBackoff is the base delay between dial attempts, growing
	// exponentially with full jitter in [d/2, d) — the joinctl policy, so
	// a fleet of loaders does not hammer a restarting daemon in lockstep
	// (0 → 50ms).
	RetryBackoff time.Duration
	// DialRetries is the number of dial attempts per operation before it
	// reports failure (0 → 4). The connection stays marked broken, so the
	// NEXT operation retries again — persistent outages surface as errors
	// on every call, not hangs.
	DialRetries int
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.DialRetries <= 0 {
		o.DialRetries = 4
	}
	return o
}

// ErrGoodbye reports that the server announced shutdown mid-stream.
// Batches acked before the GOODBYE are durable on the server; anything
// still in flight must be considered lost.
var ErrGoodbye = errors.New("wire: server shutting down (GOODBYE)")

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("wire: client closed")

// ErrInterrupted reports that the stream broke and was redialed while a
// call was waiting for acks. Batches sent before the failure were never
// acknowledged and must be considered lost; the redialed connection
// carries only traffic sent after it.
var ErrInterrupted = errors.New("wire: stream redialed while awaiting acks; unacked batches lost")

// ServerError is an ERROR frame surfaced to the caller: the server tore
// the stream down, naming the relation when one was at fault (a sticky
// oplog failure, an unknown relation, an arity mismatch).
type ServerError struct {
	Seq      uint64 // highest batch seq the error applies to
	Relation string // relation at fault, "" for connection-level errors
	Msg      string
}

func (e *ServerError) Error() string {
	if e.Relation != "" {
		return fmt.Sprintf("wire: server error (relation %q, seq %d): %s", e.Relation, e.Seq, e.Msg)
	}
	return fmt.Sprintf("wire: server error (seq %d): %s", e.Seq, e.Msg)
}

// Client streams batches to one amswire server over a pool of
// connections. All methods are safe for concurrent use. Batch encoding
// appends straight from the caller's slices into a per-connection reused
// buffer — zero allocations per op once the pool is warm. A transport
// failure fails the in-flight call (the client cannot know whether the
// server staged the batch, so it will not silently retry and risk
// double-applying ops into linear synopses) and redials in the
// background of the next call with jittered exponential backoff.
type Client struct {
	addr  string
	opts  Options
	conns []*clientConn
	next  atomic.Uint64

	mu     sync.Mutex
	closed bool
	mode   string // engine ingest mode from the first WELCOME
}

// Dial connects to an amswire server. The first pool connection is
// established (and its HELLO/WELCOME handshake completed) eagerly, so a
// wrong address or incompatible server fails here; the rest of the pool
// dials lazily.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{addr: addr, opts: opts, conns: make([]*clientConn, opts.Conns)}
	for i := range c.conns {
		c.conns[i] = newClientConn(addr, &c.opts, uint64(i))
	}
	cc := c.conns[0]
	cc.mu.Lock()
	err := cc.ensureLocked()
	mode := cc.mode
	cc.mu.Unlock()
	if err != nil {
		return nil, err
	}
	c.mode = mode
	return c, nil
}

// IngestMode reports the server engine's resolved write path ("locked"
// or "absorber") from the handshake.
func (c *Client) IngestMode() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// pick spreads work round-robin over the pool.
func (c *Client) pick() (*clientConn, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	return c.conns[c.next.Add(1)%uint64(len(c.conns))], nil
}

// InsertBatch streams single-attribute inserts (relation arity 1).
func (c *Client) InsertBatch(relation string, vals []uint64) error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	return cc.sendBatch(relation, false, 1, vals)
}

// DeleteBatch streams single-attribute deletes.
func (c *Client) DeleteBatch(relation string, vals []uint64) error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	return cc.sendBatch(relation, true, 1, vals)
}

// InsertRows streams full tuples (each row the relation's complete
// attribute set in schema order, primary attribute first).
func (c *Client) InsertRows(relation string, rows [][]uint64) error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	return cc.sendRows(relation, false, rows)
}

// DeleteRows streams tuple deletes.
func (c *Client) DeleteRows(relation string, rows [][]uint64) error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	return cc.sendRows(relation, true, rows)
}

// Flush is the read-your-writes barrier: it sends FLUSH on every
// connection with unacked batches and blocks until each is fully acked —
// after it returns every previously sent batch is applied to the
// engine's synopses and OS-owned in the oplog.
func (c *Client) Flush() error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var first error
	for _, cc := range c.conns {
		if err := cc.flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes outstanding batches best-effort, says GOODBYE, and
// closes every connection. The client is unusable afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, cc := range c.conns {
		if err := cc.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clientConn is one pooled stream. The mutex serializes the write side
// and the dial path; the reader goroutine owns the read side and feeds
// acked/err back under the same mutex.
type clientConn struct {
	addr string
	opts *Options
	rng  *xrand.Rand // jitter source; guarded by mu

	mu     sync.Mutex
	cond   *sync.Cond
	nc     net.Conn
	mode   string // server's ingest mode from WELCOME
	gen    uint64 // dial generation; bumped by every successful redial
	seq    uint64 // last sent batch seq (resets with the generation)
	acked  uint64 // last cumulatively acked seq (resets with the generation)
	err    error  // terminal stream error; cleared by the next successful redial
	fails  int    // consecutive dial failures, for backoff growth
	closed bool

	buf  []byte   // frame encode scratch
	flat []uint64 // row-flattening scratch

	sleep func(time.Duration) // test seam; nil means time.Sleep
}

func newClientConn(addr string, opts *Options, salt uint64) *clientConn {
	cc := &clientConn{addr: addr, opts: opts,
		rng: xrand.New(uint64(time.Now().UnixNano()) ^ (salt * 0x9E3779B97F4A7C15))}
	cc.cond = sync.NewCond(&cc.mu)
	return cc
}

// ensureLocked makes the connection usable: if it is fresh or broken it
// redials (up to DialRetries attempts with jittered exponential backoff)
// and runs the handshake. Caller holds mu. The backoff sleeps drop the
// mutex, so while one caller waits out a retry storm the others are not
// wedged behind it — they queue on the lock, observe the broken state,
// and either find the connection repaired or join the retry accounting.
func (cc *clientConn) ensureLocked() error {
	if cc.closed {
		return ErrClosed
	}
	if cc.nc != nil && cc.err == nil {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < cc.opts.DialRetries; attempt++ {
		if cc.fails > 0 {
			cc.pause()
			// The lock was dropped during the sleep: another caller may
			// have closed the client or already repaired the connection.
			if cc.closed {
				return ErrClosed
			}
			if cc.nc != nil && cc.err == nil {
				return nil
			}
		}
		if cc.nc != nil {
			_ = cc.nc.Close()
			cc.nc = nil
		}
		if err := cc.dialLocked(); err != nil {
			cc.fails++
			lastErr = err
			continue
		}
		cc.fails = 0
		cc.err = nil
		return nil
	}
	return fmt.Errorf("wire: %d dial attempts to %s exhausted: %w", cc.opts.DialRetries, cc.addr, lastErr)
}

// maxBackoff caps the redial backoff. Past ~30s the server is down, not
// busy: longer waits only delay the caller's error, and an unclamped
// doubling of a large user-set RetryBackoff overflows time.Duration into
// a negative sleep — i.e. no wait at all, turning a deep failure streak
// into a zero-backoff retry storm against a node that is trying to
// recover. Same cap and rationale as the coordinator fetcher's.
const maxBackoff = 30 * time.Second

// pause sleeps the jittered exponential backoff for the current failure
// streak (full jitter in [d/2, d), the joinctl policy). The doubling is
// computed by repeated overflow-guarded shifting and clamped at
// maxBackoff, so the sleep is positive and bounded at any streak depth
// and any RetryBackoff. Caller holds mu; the sleep itself releases it so
// Flush/Close and the other pool users are never parked behind a
// multi-second retry storm.
func (cc *clientConn) pause() {
	d := cc.opts.RetryBackoff
	for i := 1; i < cc.fails && d < maxBackoff; i++ {
		if d > maxBackoff/2 { // next shift would pass (or overflow past) the cap
			d = maxBackoff
			break
		}
		d <<= 1
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(cc.rng.Uint64n(uint64(half)))
	}
	sleep := cc.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	cc.mu.Unlock()
	sleep(d)
	cc.mu.Lock()
}

// dialLocked performs one dial + handshake attempt.
func (cc *clientConn) dialLocked() error {
	nc, err := net.DialTimeout("tcp", cc.addr, cc.opts.DialTimeout)
	if err != nil {
		return err
	}
	cc.buf = AppendFrame(cc.buf[:0], &Frame{Kind: KindHello, Proto: ProtoVersion, Window: uint32(cc.opts.Window)})
	if _, err := nc.Write(cc.buf); err != nil {
		_ = nc.Close()
		return err
	}
	var rbuf []byte
	body, err := ReadFrame(nc, &rbuf)
	if err != nil {
		_ = nc.Close()
		return err
	}
	var f Frame
	if err := DecodeFrame(body, &f); err != nil {
		_ = nc.Close()
		return err
	}
	switch f.Kind {
	case KindWelcome:
	case KindError:
		_ = nc.Close()
		return &ServerError{Seq: f.Seq, Relation: f.Relation, Msg: f.Text}
	default:
		_ = nc.Close()
		return fmt.Errorf("%w: expected WELCOME, got %v", ErrBadFrame, f.Kind)
	}
	cc.nc = nc
	cc.mode = f.Text
	cc.seq, cc.acked = 0, 0
	cc.gen++
	// Wake waiters parked on the previous generation's acks; they check
	// the generation and report ErrInterrupted instead of matching their
	// stale targets against the fresh stream's counters.
	cc.cond.Broadcast()
	go cc.readLoop(nc)
	return nil
}

// readLoop consumes ACK/ERROR/GOODBYE frames for one dialed generation.
// It binds to its own net.Conn: after a redial, a stale reader's state
// updates are discarded.
func (cc *clientConn) readLoop(nc net.Conn) {
	var (
		buf []byte
		f   Frame
	)
	for {
		body, err := ReadFrame(nc, &buf)
		if err == nil {
			err = DecodeFrame(body, &f)
		}
		cc.mu.Lock()
		if cc.nc != nc { // stale generation
			cc.mu.Unlock()
			return
		}
		if err != nil {
			if cc.err == nil {
				cc.err = fmt.Errorf("wire: stream to %s broken: %w", cc.addr, err)
			}
			cc.cond.Broadcast()
			cc.mu.Unlock()
			return
		}
		switch f.Kind {
		case KindAck:
			if f.Seq > cc.acked {
				cc.acked = f.Seq
			}
			cc.cond.Broadcast()
		case KindError:
			if cc.err == nil {
				cc.err = &ServerError{Seq: f.Seq, Relation: f.Relation, Msg: f.Text}
			}
			cc.cond.Broadcast()
			cc.mu.Unlock()
			return
		case KindGoodbye:
			if cc.err == nil {
				cc.err = ErrGoodbye
			}
			cc.cond.Broadcast()
			cc.mu.Unlock()
			return
		default:
			if cc.err == nil {
				cc.err = fmt.Errorf("%w: unexpected %v from server", ErrBadFrame, f.Kind)
			}
			cc.cond.Broadcast()
			cc.mu.Unlock()
			return
		}
		cc.mu.Unlock()
	}
}

// maxBatchVals bounds one frame's value payload; larger batches split
// transparently into multiple frames (each under MaxFrame).
const maxBatchVals = (MaxFrame - 1024) / 8

// sendBatch encodes and writes arity-1 (or pre-flattened) values as one
// or more BATCH frames, respecting the ack window.
func (cc *clientConn) sendBatch(relation string, del bool, arity int, vals []uint64) error {
	if len(vals) == 0 {
		return nil
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := cc.ensureLocked(); err != nil {
		return err
	}
	chunk := maxBatchVals - maxBatchVals%arity
	for off := 0; off < len(vals); off += chunk {
		end := off + chunk
		if end > len(vals) {
			end = len(vals)
		}
		if err := cc.writeBatchLocked(relation, del, arity, vals[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// sendRows flattens tuple rows into the connection's scratch and streams
// them; the scratch is reused, so steady-state row ingest allocates
// nothing per op.
func (cc *clientConn) sendRows(relation string, del bool, rows [][]uint64) error {
	if len(rows) == 0 {
		return nil
	}
	arity := len(rows[0])
	if arity < 1 || arity > MaxArity {
		return fmt.Errorf("%w: row arity %d (1..%d)", ErrBadFrame, arity, MaxArity)
	}
	for i, row := range rows {
		if len(row) != arity {
			return fmt.Errorf("%w: row %d has %d values, row 0 has %d", ErrBadFrame, i, len(row), arity)
		}
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := cc.ensureLocked(); err != nil {
		return err
	}
	cc.flat = cc.flat[:0]
	for _, row := range rows {
		cc.flat = append(cc.flat, row...)
	}
	chunk := maxBatchVals - maxBatchVals%arity
	for off := 0; off < len(cc.flat); off += chunk {
		end := off + chunk
		if end > len(cc.flat) {
			end = len(cc.flat)
		}
		if err := cc.writeBatchLocked(relation, del, arity, cc.flat[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// writeBatchLocked sends one BATCH frame, blocking while the ack window
// is full. Caller holds mu and has ensured the connection. The window
// wait is generation-checked: if the stream breaks and another caller
// redials while we sleep, our earlier frames died with the old
// connection, so continuing on the fresh one would silently drop the
// batch's prefix — report ErrInterrupted instead.
func (cc *clientConn) writeBatchLocked(relation string, del bool, arity int, vals []uint64) error {
	gen := cc.gen
	for cc.seq-cc.acked >= uint64(cc.opts.Window) && cc.err == nil && cc.gen == gen {
		cc.cond.Wait()
	}
	if cc.gen != gen {
		return ErrInterrupted
	}
	if cc.err != nil {
		return cc.takeErrLocked()
	}
	cc.seq++
	f := Frame{Kind: KindBatch, Seq: cc.seq, Del: del, Arity: arity, Relation: relation, Vals: vals}
	cc.buf = AppendFrame(cc.buf[:0], &f)
	if _, err := cc.nc.Write(cc.buf); err != nil {
		if cc.err == nil {
			cc.err = err
		}
		return cc.takeErrLocked()
	}
	return nil
}

// takeErrLocked reports the terminal error and leaves the connection
// marked broken, so the next operation redials.
func (cc *clientConn) takeErrLocked() error {
	err := cc.err
	if cc.nc != nil {
		_ = cc.nc.Close()
	}
	return err
}

// flush sends FLUSH and waits for the cumulative ack to reach the last
// sent seq. A connection that was never dialed (or has nothing unacked)
// returns immediately. The wait is generation-checked: `target` is
// meaningful only on the connection that sent it, so if a concurrent
// sender redials while we sleep (resetting seq/acked for the fresh
// stream), comparing the new generation's acks against the old target
// could claim lost pre-failure batches were durable — report
// ErrInterrupted instead.
func (cc *clientConn) flush() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		return ErrClosed
	}
	if cc.err != nil {
		return cc.takeErrLocked()
	}
	if cc.nc == nil || cc.seq == cc.acked {
		return nil
	}
	gen := cc.gen
	target := cc.seq
	cc.buf = AppendFrame(cc.buf[:0], &Frame{Kind: KindFlush, Seq: target})
	if _, err := cc.nc.Write(cc.buf); err != nil {
		if cc.err == nil {
			cc.err = err
		}
		return cc.takeErrLocked()
	}
	for cc.acked < target && cc.err == nil && cc.gen == gen {
		cc.cond.Wait()
	}
	if cc.gen != gen {
		return ErrInterrupted
	}
	if cc.err != nil {
		return cc.takeErrLocked()
	}
	return nil
}

// close flushes best-effort, says GOODBYE, and closes.
func (cc *clientConn) close() error {
	err := cc.flush()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.closed = true
	if cc.nc != nil {
		cc.buf = AppendFrame(cc.buf[:0], &Frame{Kind: KindGoodbye, Text: "client closing"})
		_, _ = cc.nc.Write(cc.buf)
		_ = cc.nc.Close()
		cc.nc = nil
	}
	cc.cond.Broadcast()
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}
