package wire

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"amstrack/internal/engine"
	"amstrack/internal/oplog"
)

// memOpts is the in-memory engine shape shared by server and mirror —
// bundle comparison needs equal Seed and dimensions on both sides.
func memOpts() engine.Options {
	return engine.Options{SignatureWords: 64, Seed: 7, SketchS1: 64, SketchS2: 4, Shards: 2}
}

// startServer serves eng on an ephemeral TCP port and tears everything
// down with the test.
func startServer(t *testing.T, eng *engine.Engine) (*Server, string) {
	t.Helper()
	srv := NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

func newEngine(t *testing.T, opts engine.Options) *engine.Engine {
	t.Helper()
	e, err := engine.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

// expectSameRelation asserts the wire-fed engine and the directly-fed
// mirror hold bit-identical synopses for name — the linearity guarantee
// the protocol must preserve.
func expectSameRelation(t *testing.T, got, want *engine.Engine, name string) {
	t.Helper()
	gb, err := got.ExportRelation(name)
	if err != nil {
		t.Fatalf("%s: export got: %v", name, err)
	}
	wb, err := want.ExportRelation(name)
	if err != nil {
		t.Fatalf("%s: export want: %v", name, err)
	}
	if !bytes.Equal(gb, wb) {
		t.Fatalf("%s: wire-fed synopsis differs from mirror (%d vs %d bundle bytes)", name, len(gb), len(wb))
	}
}

func TestWireEndToEnd(t *testing.T) {
	eng := newEngine(t, memOpts())
	mirror := newEngine(t, memOpts())
	for _, e := range []*engine.Engine{eng, mirror} {
		if _, err := e.Define("f"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.DefineSchema("g", engine.Schema{Attrs: []string{"a", "b"}}); err != nil {
			t.Fatal(err)
		}
	}
	srv, addr := startServer(t, eng)

	cl, err := Dial(addr, Options{Conns: 2, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cl.IngestMode(), eng.Options().IngestMode.String(); got != want {
		t.Fatalf("handshake ingest mode %q, engine resolved %q", got, want)
	}

	// Single-attribute inserts and deletes, spread over several batches so
	// both pool connections and the ack pipeline see traffic.
	mf, _ := mirror.Get("f")
	var rows int64
	for b := 0; b < 8; b++ {
		vals := make([]uint64, 100)
		for i := range vals {
			vals[i] = uint64(b*31+i) % 257
		}
		if err := cl.InsertBatch("f", vals); err != nil {
			t.Fatal(err)
		}
		mf.InsertBatch(vals)
		rows += int64(len(vals))
	}
	del := []uint64{3, 9, 27, 81}
	if err := cl.DeleteBatch("f", del); err != nil {
		t.Fatal(err)
	}
	if err := mf.DeleteBatch(del); err != nil {
		t.Fatal(err)
	}
	rows += int64(len(del))

	// Tuple rows on the schema relation.
	mg, _ := mirror.Get("g")
	tuples := make([][]uint64, 200)
	for i := range tuples {
		tuples[i] = []uint64{uint64(i) % 97, uint64(3*i) % 89}
	}
	if err := cl.InsertRows("g", tuples); err != nil {
		t.Fatal(err)
	}
	mg.InsertTupleBatch(tuples)
	rows += int64(len(tuples))
	if err := cl.DeleteRows("g", tuples[:10]); err != nil {
		t.Fatal(err)
	}
	if err := mg.DeleteTupleBatch(tuples[:10]); err != nil {
		t.Fatal(err)
	}
	rows += 10

	// FLUSH is the read-your-writes barrier: after it, Len and the
	// synopses must reflect every batch above.
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := mirror.Drain(); err != nil {
		t.Fatal(err)
	}
	ef, _ := eng.Get("f")
	if got, want := ef.Len(), mf.Len(); got != want {
		t.Fatalf("f.Len = %d after flush, mirror %d", got, want)
	}
	expectSameRelation(t, eng, mirror, "f")
	expectSameRelation(t, eng, mirror, "g")

	st := srv.Stats()
	if st.Rows != rows {
		t.Fatalf("stats counted %d rows, sent %d", st.Rows, rows)
	}
	if st.Batches < 10 || st.Flushes < 1 || st.TotalConns < 1 || st.Errors != 0 {
		t.Fatalf("implausible stats after clean run: %+v", st)
	}

	if err := cl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The server notices the GOODBYEs asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Conns != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still reports %d open conns after client close", srv.Stats().Conns)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWireServerErrors(t *testing.T) {
	eng := newEngine(t, memOpts())
	if _, err := eng.Define("f"); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng)
	cl, err := Dial(addr, Options{Conns: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Unknown relation: the batch is staged optimistically on the client,
	// the server answers ERROR naming the relation, and the flush barrier
	// surfaces it.
	err = cl.InsertBatch("nope", []uint64{1})
	if err == nil {
		err = cl.Flush()
	}
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("unknown relation: got %v, want *ServerError", err)
	}
	if se.Relation != "nope" {
		t.Fatalf("unknown relation: error names %q, want %q", se.Relation, "nope")
	}

	// The stream was torn down by the ERROR; the next operation redials
	// transparently and the connection works again.
	if err := cl.InsertBatch("f", []uint64{1, 2, 3}); err != nil {
		t.Fatalf("redial after server error: %v", err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("flush after redial: %v", err)
	}

	// Arity mismatch: tuple rows against an arity-1 relation.
	se = nil
	err = cl.InsertRows("f", [][]uint64{{1, 2}, {3, 4}})
	if err == nil {
		err = cl.Flush()
	}
	if !errors.As(err, &se) {
		t.Fatalf("arity mismatch: got %v, want *ServerError", err)
	}
	if se.Relation != "f" {
		t.Fatalf("arity mismatch: error names %q, want %q", se.Relation, "f")
	}
}

// TestWireServerCloseUnblocksIdleHandshake pins the shutdown guarantee:
// a connection that never sends HELLO has no ack loop watching the bye
// channel, so only the handshake/Close deadlines can reap it — Close
// must still return promptly instead of wedging wg.Wait (and with it the
// daemon's whole SIGTERM path) on one idle client.
func TestWireServerCloseUnblocksIdleHandshake(t *testing.T) {
	eng := newEngine(t, memOpts())
	srv := NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Conns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never registered the connection")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > closeGrace+3*time.Second {
		t.Fatalf("Close took %v with an idle pre-HELLO conn; want ~%v", d, closeGrace)
	}
}

// TestWireLockedModeDeleteErrorSurfaces: in locked ingest mode a failed
// delete reports its error synchronously from DeleteTupleBatch; the wire
// path must hand it back as an ERROR frame naming the relation — the
// same semantics the HTTP ingest handler gives its callers — never a
// clean ACK for a delete the engine rejected.
func TestWireLockedModeDeleteErrorSurfaces(t *testing.T) {
	ffs := oplog.NewFaultFS(nil)
	opts := memOpts()
	opts.Dir = t.TempDir()
	opts.FS = ffs
	opts.IngestMode = engine.IngestLocked
	eng, err := engine.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() // errors after the crash below; irrelevant here
	if _, err := eng.DefineSchema("g", engine.Schema{Attrs: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng)
	cl, err := Dial(addr, Options{Conns: 1, DialRetries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rows := [][]uint64{{1, 2}, {3, 4}}
	if err := cl.InsertRows("g", rows); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill the filesystem: the next oplog append fails, so the delete
	// returns the sticky error synchronously in locked mode.
	ffs.CrashNow()
	err = cl.DeleteRows("g", rows)
	if err == nil {
		err = cl.Flush()
	}
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("failed delete surfaced as %v, want *ServerError", err)
	}
	if se.Relation != "g" {
		t.Fatalf("error names relation %q, want %q", se.Relation, "g")
	}
}

// TestWireProtoVersionMismatch speaks the raw protocol: a HELLO with a
// future version must be answered by ERROR, not silence.
func TestWireProtoVersionMismatch(t *testing.T) {
	eng := newEngine(t, memOpts())
	_, addr := startServer(t, eng)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(AppendFrame(nil, &Frame{Kind: KindHello, Proto: 99, Window: 1})); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	body, err := ReadFrame(nc, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := DecodeFrame(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindError {
		t.Fatalf("got %v, want ERROR", f.Kind)
	}
}

// TestWireSeqRegression: batch sequence numbers must be strictly
// increasing per stream; a replayed seq is a protocol error (it would
// make ack bookkeeping ambiguous).
func TestWireSeqRegression(t *testing.T) {
	eng := newEngine(t, memOpts())
	if _, err := eng.Define("f"); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var out []byte
	out = AppendFrame(out, &Frame{Kind: KindHello, Proto: ProtoVersion, Window: 8})
	out = AppendFrame(out, &Frame{Kind: KindBatch, Seq: 5, Arity: 1, Relation: "f", Vals: []uint64{1}})
	out = AppendFrame(out, &Frame{Kind: KindBatch, Seq: 5, Arity: 1, Relation: "f", Vals: []uint64{2}})
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for {
		body, err := ReadFrame(nc, &buf)
		if err != nil {
			t.Fatalf("stream ended without ERROR: %v", err)
		}
		var f Frame
		if err := DecodeFrame(body, &f); err != nil {
			t.Fatal(err)
		}
		switch f.Kind {
		case KindWelcome, KindAck:
			continue
		case KindError:
			return // the replayed seq was rejected
		default:
			t.Fatalf("unexpected %v", f.Kind)
		}
	}
}

// TestWireClientReconnect restarts the server on the same address and
// expects the client to recover by itself: the outage surfaces as errors
// (never silent retries — a replayed batch would double-apply into the
// linear synopses), then the jittered redial path brings the stream back.
func TestWireClientReconnect(t *testing.T) {
	eng := newEngine(t, memOpts())
	if _, err := eng.Define("f"); err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(eng)
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go func() { _ = srv1.Serve(ln1) }()

	cl, err := Dial(addr, Options{Conns: 1, RetryBackoff: time.Millisecond, DialRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.InsertBatch("f", []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	// The outage must surface as at least one error.
	deadline := time.Now().Add(5 * time.Second)
	var sawErr bool
	for !sawErr {
		if time.Now().After(deadline) {
			t.Fatal("no error surfaced while server was down")
		}
		if err := cl.InsertBatch("f", []uint64{3}); err != nil {
			sawErr = true
		} else if err := cl.Flush(); err != nil {
			sawErr = true
		}
	}

	srv2 := NewServer(eng)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { _ = srv2.Close() })

	// And the client must come back without being rebuilt.
	for {
		if time.Now().After(deadline) {
			t.Fatal("client did not reconnect after server restart")
		}
		if err := cl.InsertBatch("f", []uint64{4}); err == nil {
			if err := cl.Flush(); err == nil {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}
