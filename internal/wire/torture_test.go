package wire

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"amstrack/internal/engine"
	"amstrack/internal/oplog"
	"amstrack/internal/xrand"
)

// The torture tests pin the protocol's one durability promise: an ACKed
// batch survives anything. A client that counted an ack may lose the
// server to a graceful shutdown or a kill -9 the next instant — the
// recovered engine must still contain every acked batch, bit-identical
// to a mirror engine fed the same prefix, and the client must learn
// about the break loudly (GOODBYE, ERROR, or a connection error), never
// by a silent hang or a silent ack.

const tortureBatch = 32 // rows per batch; recovery is audited in batch units

// durableOpts is the on-disk engine shape; the mirror uses memOpts()
// (equal Seed and dimensions, no Dir), so bundles compare byte-for-byte.
func durableOpts(dir string) engine.Options {
	o := memOpts()
	o.Dir = dir
	o.IngestMode = engine.IngestAbsorber
	return o
}

// batchVals is the deterministic content of batch i — both the streaming
// client and the mirror derive it, so "which prefix survived" is fully
// determined by the recovered row count.
func batchVals(i int) []uint64 {
	rng := xrand.New(uint64(i)*0x9E3779B97F4A7C15 + 1)
	out := make([]uint64, tortureBatch)
	for j := range out {
		out[j] = rng.Uint64n(4096)
	}
	return out
}

// mirrorPrefix builds an in-memory engine holding batches 1..n of "f".
func mirrorPrefix(t *testing.T, n int) *engine.Engine {
	t.Helper()
	m := newEngine(t, memOpts())
	rel, err := m.Define("f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		rel.InsertBatch(batchVals(i))
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	return m
}

// expectPrefixRecovery checks a recovered engine against the acked
// count: the survivor must hold a whole-batch prefix at least as long as
// what was acked, and that prefix must be bit-identical to the mirror.
func expectPrefixRecovery(t *testing.T, back *engine.Engine, acked int) {
	t.Helper()
	rel, err := back.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	n := rel.Len()
	if n%tortureBatch != 0 {
		t.Fatalf("recovered %d rows — not a whole number of %d-row batches", n, tortureBatch)
	}
	got := int(n / tortureBatch)
	if got < acked {
		t.Fatalf("recovered %d batches, but %d were ACKed — an acked batch was lost", got, acked)
	}
	mirror := mirrorPrefix(t, got)
	gb, err := back.ExportRelation("f")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := mirror.ExportRelation("f")
	if err != nil {
		t.Fatal(err)
	}
	// The bundle stamp's Seq must survive recovery bit-exactly — the
	// recovered engine has to report the mirror's op count. Epoch is
	// durability metadata (the recovered engine has checkpointed, the
	// in-memory mirror never does), so the byte comparison normalizes it
	// and everything else must match exactly.
	var gd, wd engine.RelationBundle
	if err := gd.UnmarshalBinary(gb); err != nil {
		t.Fatal(err)
	}
	if err := wd.UnmarshalBinary(wb); err != nil {
		t.Fatal(err)
	}
	if gd.Seq != wd.Seq {
		t.Fatalf("recovered bundle Seq = %d, mirror of %d batches has %d", gd.Seq, got, wd.Seq)
	}
	gd.Epoch = wd.Epoch
	gn, err := gd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gn, wb) {
		t.Fatalf("recovered synopsis differs from mirror of the first %d batches", got)
	}
}

// TestWireGracefulShutdownNoLostAck streams batches while the daemon's
// shutdown sequence runs underneath: wire listener first (GOODBYE on the
// open stream), then the final checkpoint, then engine close — the PR 6
// drain path extended to open streams. Every batch the client saw acked
// must be in the recovered image.
func TestWireGracefulShutdownNoLostAck(t *testing.T) {
	dir := t.TempDir()
	eng, err := engine.Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Define("f"); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()

	cl, err := Dial(ln.Addr().String(), Options{Conns: 1, Window: 4, DialRetries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	type streamEnd struct {
		acked int
		err   error
	}
	done := make(chan streamEnd, 1)
	go func() {
		// Flush after every batch: each counted batch is individually
		// acked, so `acked` is exactly the client's durability claim.
		var e streamEnd
		for i := 1; ; i++ {
			if e.err = cl.InsertBatch("f", batchVals(i)); e.err != nil {
				break
			}
			if e.err = cl.Flush(); e.err != nil {
				break
			}
			e.acked++
		}
		done <- e
	}()

	time.Sleep(30 * time.Millisecond) // let a real pipeline build up
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	end := <-done
	if end.err == nil {
		t.Fatal("stream survived server shutdown")
	}
	var se *ServerError
	if errors.As(end.err, &se) {
		t.Fatalf("shutdown surfaced as server fault %v; want GOODBYE or a connection error", se)
	}
	if end.acked == 0 {
		t.Fatal("no batch acked before shutdown; torture window missed the stream entirely")
	}
	_ = cl.Close()

	// Daemon epilogue: final checkpoint, close, reopen.
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := engine.Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	expectPrefixRecovery(t, back, end.acked)
}

// TestWireKillNineNoLostAck models the hard crash with the oplog fault
// filesystem: after CrashNow every byte that had reached the base
// filesystem survives and every later write fails — the kill -9 fault
// model. The crash lands between batches, so the acked count fully
// determines the surviving prefix; the batch sent after the crash must
// fail loudly (the drain's sticky oplog error, reported as ERROR naming
// the relation) and must NOT be acked.
func TestWireKillNineNoLostAck(t *testing.T) {
	dir := t.TempDir()
	ffs := oplog.NewFaultFS(nil)
	opts := durableOpts(dir)
	opts.FS = ffs
	eng, err := engine.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() // errors after the crash; the reopen below is the real check
	if _, err := eng.Define("f"); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, eng)
	cl, err := Dial(addr, Options{Conns: 1, DialRetries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const acked = 20
	for i := 1; i <= acked; i++ {
		if err := cl.InsertBatch("f", batchVals(i)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}

	ffs.CrashNow()

	// The post-crash batch must surface an error — acking it would claim
	// durability the disk never got.
	var failErr error
	for i := acked + 1; i <= acked+8 && failErr == nil; i++ {
		if failErr = cl.InsertBatch("f", batchVals(i)); failErr != nil {
			break
		}
		failErr = cl.Flush()
	}
	if failErr == nil {
		t.Fatal("batches kept acking after the filesystem died")
	}

	// Reopen from the surviving disk image with the real filesystem.
	back, err := engine.Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	expectPrefixRecovery(t, back, acked)
}
