package wire

import (
	"math"
	"testing"
	"time"

	"amstrack/internal/xrand"
)

// TestPauseBackoffCapped pins the redial backoff fix: with a large
// user-set RetryBackoff and a deep failure streak, the old
// `RetryBackoff << shift` doubling overflowed time.Duration into a
// negative sleep — a zero-backoff retry storm against a node trying to
// recover. Every pause must now be positive and ≤ maxBackoff at any
// streak depth and any configured backoff.
func TestPauseBackoffCapped(t *testing.T) {
	cases := []struct {
		name    string
		backoff time.Duration
		fails   []int
	}{
		{"default", 0, []int{1, 2, 3, 10, 50, 63, 64, 200}},
		{"one-second", time.Second, []int{1, 2, 5, 10, 63, 1000}},
		{"huge", math.MaxInt64 / 2, []int{1, 2, 10, 63, 200}},
		{"already-over-cap", 2 * maxBackoff, []int{1, 5, 100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{RetryBackoff: tc.backoff}.withDefaults()
			var slept time.Duration
			cc := &clientConn{
				opts:  &opts,
				rng:   xrand.New(1),
				sleep: func(d time.Duration) { slept = d },
			}
			for _, fails := range tc.fails {
				cc.fails = fails
				slept = -1
				cc.mu.Lock()
				cc.pause()
				cc.mu.Unlock()
				if slept <= 0 {
					t.Fatalf("fails=%d backoff=%v: slept %v, want positive", fails, tc.backoff, slept)
				}
				if slept > maxBackoff {
					t.Fatalf("fails=%d backoff=%v: slept %v, want ≤ %v", fails, tc.backoff, slept, maxBackoff)
				}
			}
		})
	}
}

// TestPauseBackoffGrows sanity-checks that the cap did not flatten the
// schedule: under the default backoff, deeper streaks wait longer (up
// to the cap) — the lower jitter bound d/2 must be monotone until it
// saturates.
func TestPauseBackoffGrows(t *testing.T) {
	opts := Options{}.withDefaults()
	floor := func(fails int) time.Duration {
		d := opts.RetryBackoff
		for i := 1; i < fails && d < maxBackoff; i++ {
			if d > maxBackoff/2 {
				d = maxBackoff
				break
			}
			d <<= 1
		}
		if d > maxBackoff {
			d = maxBackoff
		}
		return d / 2
	}
	prev := time.Duration(-1)
	for fails := 1; fails <= 20; fails++ {
		f := floor(fails)
		if f < prev {
			t.Fatalf("fails=%d: jitter floor %v shrank from %v", fails, f, prev)
		}
		prev = f
	}
	if prev != maxBackoff/2 {
		t.Fatalf("deep-streak jitter floor = %v, want saturation at %v", prev, maxBackoff/2)
	}
}
