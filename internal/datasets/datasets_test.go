package datasets

import (
	"math"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	specs := All()
	if len(specs) != 13 {
		t.Fatalf("registry has %d data sets, want 13 (Table 1)", len(specs))
	}
	figures := map[int]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Type == "" || s.Gen == nil {
			t.Errorf("incomplete spec %+v", s)
		}
		if s.Figure < 2 || s.Figure > 14 {
			t.Errorf("%s: figure %d outside 2..14", s.Name, s.Figure)
		}
		if figures[s.Figure] {
			t.Errorf("duplicate figure %d", s.Figure)
		}
		figures[s.Figure] = true
	}
	for f := 2; f <= 14; f++ {
		if !figures[f] {
			t.Errorf("no data set for figure %d", f)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("zipf1.0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Figure != 2 {
		t.Fatalf("zipf1.0 figure = %d", s.Figure)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if names[0] != "zipf1.0" || names[len(names)-1] != "path" {
		t.Fatalf("names order wrong: %v", names)
	}
}

func TestSortedByFigure(t *testing.T) {
	specs := SortedByFigure()
	for i := 1; i < len(specs); i++ {
		if specs[i].Figure <= specs[i-1].Figure {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := ByName("mf2")
	a, err := s.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Generate(42)
	if len(a) != len(b) {
		t.Fatal("lengths differ across same-seed runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("values differ at %d", i)
		}
	}
	c, _ := s.Generate(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical stream")
	}
}

// TestCalibrationAgainstTable1 measures every data set and checks the
// generated characteristics against the paper's reported rows: length must
// match exactly; domain size within 40%; self-join size within a factor of
// 2.5. (The real-data stand-ins are calibrated models, not byte replicas;
// EXPERIMENTS.md reports the exact measured numbers.)
func TestCalibrationAgainstTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			m, err := s.Measure(1)
			if err != nil {
				t.Fatal(err)
			}
			if m.Length != s.PaperLength {
				t.Errorf("length = %d, paper %d", m.Length, s.PaperLength)
			}
			domRatio := float64(m.Domain) / float64(s.PaperDomain)
			if domRatio < 0.6 || domRatio > 1.4 {
				t.Errorf("domain = %d, paper %d (ratio %.2f)", m.Domain, s.PaperDomain, domRatio)
			}
			sjRatio := float64(m.SelfJoin) / s.PaperSelfJoin
			if sjRatio < 1/2.5 || sjRatio > 2.5 {
				t.Errorf("self-join = %.3g, paper %.3g (ratio %.2f)", float64(m.SelfJoin), s.PaperSelfJoin, sjRatio)
			}
			if math.IsNaN(sjRatio) {
				t.Error("self-join ratio NaN")
			}
		})
	}
}
