// Package datasets materializes the 13 data sets of the paper's Table 1.
// Each Spec records the paper's reported length, domain size, self-join
// size and type next to the generator that reproduces it, so that the
// Table 1 experiment can print paper-vs-measured rows.
//
// The seven synthetic sets are generated exactly as described; the five
// real-world sets (three literary texts, two spatial coordinate dumps) are
// replaced by calibrated synthetic models as documented in DESIGN.md §2 —
// Zipf–Mandelbrot word-frequency streams for the texts and clustered
// Gaussian mixtures for the coordinates — matched to the paper's n, domain
// size and self-join size. The artificial "path" set of §3.2 is built
// exactly.
package datasets

import (
	"fmt"
	"sort"

	"amstrack/internal/dist"
	"amstrack/internal/exact"
)

// Spec describes one Table 1 row and knows how to generate its values.
type Spec struct {
	Name string
	// Paper-reported characteristics (Table 1).
	PaperLength   int
	PaperDomain   int
	PaperSelfJoin float64
	Type          string // statistical | text | geometric | artificial
	Figure        int    // paper figure showing this data set's sweep

	// Gen materializes the value stream for the given seed.
	Gen func(seed uint64) ([]uint64, error)
}

// Generate materializes the data set with the given seed.
func (s Spec) Generate(seed uint64) ([]uint64, error) {
	vals, err := s.Gen(seed)
	if err != nil {
		return nil, fmt.Errorf("datasets: %s: %w", s.Name, err)
	}
	return vals, nil
}

// Measured summarizes the generated stream next to the paper's numbers.
type Measured struct {
	Spec     Spec
	Length   int
	Domain   int64
	SelfJoin int64
}

// Measure generates the data set and computes its exact characteristics.
func (s Spec) Measure(seed uint64) (Measured, error) {
	vals, err := s.Generate(seed)
	if err != nil {
		return Measured{}, err
	}
	h := exact.FromValues(vals)
	return Measured{Spec: s, Length: len(vals), Domain: h.Distinct(), SelfJoin: h.SelfJoin()}, nil
}

// gen adapts a (Generator, error) constructor to a Spec.Gen of n values.
func gen(n int, mk func(seed uint64) (dist.Generator, error)) func(seed uint64) ([]uint64, error) {
	return func(seed uint64) ([]uint64, error) {
		g, err := mk(seed)
		if err != nil {
			return nil, err
		}
		return dist.Take(g, n), nil
	}
}

// All returns the Table 1 registry in the paper's row order.
func All() []Spec {
	return []Spec{
		{
			Name: "zipf1.0", PaperLength: 500000, PaperDomain: 9994,
			PaperSelfJoin: 4.30e9, Type: "statistical", Figure: 2,
			Gen: gen(500000, func(seed uint64) (dist.Generator, error) {
				return dist.NewZipf(1.0, 10000, seed)
			}),
		},
		{
			Name: "zipf1.5", PaperLength: 120000, PaperDomain: 2184,
			PaperSelfJoin: 2.59e9, Type: "statistical", Figure: 3,
			Gen: gen(120000, func(seed uint64) (dist.Generator, error) {
				// Skewed enough that only ≈2200 of 10000 ranks are drawn in
				// 120000 samples, matching the paper's measured domain.
				return dist.NewZipf(1.5, 10000, seed)
			}),
		},
		{
			Name: "uniform", PaperLength: 1000000, PaperDomain: 32768,
			PaperSelfJoin: 3.15e7, Type: "statistical", Figure: 4,
			Gen: gen(1000000, func(seed uint64) (dist.Generator, error) {
				return dist.NewUniform(32768, seed)
			}),
		},
		{
			Name: "mf2", PaperLength: 19998, PaperDomain: 1693,
			PaperSelfJoin: 3.98e6, Type: "statistical", Figure: 5,
			Gen: gen(19998, func(seed uint64) (dist.Generator, error) {
				return dist.NewMultiFractal(0.2, 12, seed)
			}),
		},
		{
			Name: "mf3", PaperLength: 19968, PaperDomain: 2881,
			PaperSelfJoin: 6.19e5, Type: "statistical", Figure: 6,
			Gen: gen(19968, func(seed uint64) (dist.Generator, error) {
				return dist.NewMultiFractal(0.3, 12, seed)
			}),
		},
		{
			Name: "selfsimilar", PaperLength: 120000, PaperDomain: 200,
			PaperSelfJoin: 3.41e9, Type: "statistical", Figure: 7,
			Gen: gen(120000, func(seed uint64) (dist.Generator, error) {
				return dist.NewSelfSimilar(0.9, 200, seed)
			}),
		},
		{
			Name: "poisson", PaperLength: 120000, PaperDomain: 39,
			PaperSelfJoin: 9.12e8, Type: "statistical", Figure: 8,
			Gen: gen(120000, func(seed uint64) (dist.Generator, error) {
				return dist.NewPoisson(20, seed)
			}),
		},
		{
			Name: "wuther", PaperLength: 120952, PaperDomain: 10546,
			PaperSelfJoin: 1.12e8, Type: "text", Figure: 9,
			Gen: gen(120952, func(seed uint64) (dist.Generator, error) {
				// Zipf–Mandelbrot word model calibrated to the paper's
				// (n, t, SJ); see DESIGN.md §2.
				return dist.NewZipfMandelbrot(1.0, 0.7, 12000, seed)
			}),
		},
		{
			Name: "genesis", PaperLength: 43119, PaperDomain: 2674,
			PaperSelfJoin: 2.31e7, Type: "text", Figure: 10,
			Gen: gen(43119, func(seed uint64) (dist.Generator, error) {
				return dist.NewZipfMandelbrot(1.0, 0.5, 3000, seed)
			}),
		},
		{
			Name: "brown2", PaperLength: 855043, PaperDomain: 46153,
			PaperSelfJoin: 5.84e9, Type: "text", Figure: 11,
			Gen: gen(855043, func(seed uint64) (dist.Generator, error) {
				return dist.NewZipfMandelbrot(1.0, 0.7, 52000, seed)
			}),
		},
		{
			Name: "xout1", PaperLength: 142732, PaperDomain: 12113,
			PaperSelfJoin: 9.17e7, Type: "geometric", Figure: 12,
			Gen: gen(142732, func(seed uint64) (dist.Generator, error) {
				return dist.NewSpatial(15, 4, 1<<15, 0.12, seed)
			}),
		},
		{
			Name: "yout1", PaperLength: 142732, PaperDomain: 12140,
			PaperSelfJoin: 9.46e7, Type: "geometric", Figure: 13,
			Gen: gen(142732, func(seed uint64) (dist.Generator, error) {
				// Same model as xout1 with an independent seed stream; the
				// paper's x and y marginals are near-identical in shape.
				return dist.NewSpatial(15, 4, 1<<15, 0.12, seed^0xdeadbeef)
			}),
		},
		{
			Name: "path", PaperLength: 40800, PaperDomain: 40001,
			PaperSelfJoin: 6.80e5, Type: "artificial", Figure: 14,
			Gen: func(seed uint64) ([]uint64, error) {
				return dist.PathSet(40000, 800, seed)
			},
		},
	}
}

// ByName returns the Spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown data set %q (known: %v)", name, Names())
}

// Names lists the registry names in Table 1 order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// SortedByFigure returns the registry ordered by figure number (Table 1
// order and figure order coincide in the paper; this is defensive).
func SortedByFigure() []Spec {
	specs := All()
	sort.Slice(specs, func(i, j int) bool { return specs[i].Figure < specs[j].Figure })
	return specs
}
