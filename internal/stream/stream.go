// Package stream models the paper's tracking scenario: a sequence of
// operations on an initially empty multiset R, where each operation is an
// insertion of a value, a deletion of an existing value, or a query for an
// estimate of the self-join size (§2).
//
// It also implements the canonical-sequence reduction of §2.1: any sequence
// Â of insertions and deletions is equivalent, for the purpose of self-join
// estimation, to the insert-only sequence A obtained by cancelling each
// delete(v) against the most recent undeleted insert(v). The reduction is
// what lets the sample-count deletion handling be analyzed as if the input
// had been insert-only, and the tests in this repository use it to verify
// that trackers fed Â behave like trackers fed A.
package stream

import (
	"fmt"

	"amstrack/internal/xrand"
)

// OpKind discriminates the three tracking operations.
type OpKind uint8

// The three operation kinds of the paper's tracking model.
const (
	Insert OpKind = iota
	Delete
	Query
)

// String returns the conventional lowercase name of the kind.
func (k OpKind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Query:
		return "query"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one tracking operation. Value is ignored for Query.
//
// Multi-attribute relations (the §5 chain-join extension) log every
// tuple attribute: Value carries the PRIMARY attribute (the one every
// single-attribute consumer tracks) and Rest the remaining attributes in
// schema order; Rest is nil for single-attribute ops. Consumers that
// model one value per op — Canonicalize, Validate, Tracker replay —
// deliberately key on Value alone, which is exactly the "old logs replay
// as single-attribute" compatibility rule of the engine.
type Op struct {
	Kind  OpKind
	Value uint64
	Rest  []uint64
}

// Equal reports whether two ops are identical, attribute payload
// included. (Op is not ==-comparable now that it carries a slice.)
func (o Op) Equal(p Op) bool {
	if o.Kind != p.Kind || o.Value != p.Value || len(o.Rest) != len(p.Rest) {
		return false
	}
	for i, v := range o.Rest {
		if p.Rest[i] != v {
			return false
		}
	}
	return true
}

// FromValues converts an insert-only value sequence into operations.
func FromValues(values []uint64) []Op {
	ops := make([]Op, len(values))
	for i, v := range values {
		ops[i] = Op{Kind: Insert, Value: v}
	}
	return ops
}

// Canonicalize applies the Â → A reduction of §2.1: scanning left to right,
// every delete(v) cancels the nearest preceding uncancelled insert(v); the
// surviving inserts, in order, form the returned insert-only sequence.
// Query operations are dropped (they do not change the multiset).
//
// An error is returned if some delete has no matching prior insert — such a
// sequence is invalid under the paper's model, which deletes only existing
// items.
func Canonicalize(ops []Op) ([]uint64, error) {
	// For each value, keep a stack of indices of uncancelled inserts.
	type mark struct{ cancelled bool }
	marks := make([]mark, len(ops))
	pending := make(map[uint64][]int)
	for i, op := range ops {
		switch op.Kind {
		case Insert:
			pending[op.Value] = append(pending[op.Value], i)
		case Delete:
			stack := pending[op.Value]
			if len(stack) == 0 {
				return nil, fmt.Errorf("stream: op %d deletes value %d with no live insert", i, op.Value)
			}
			j := stack[len(stack)-1]
			pending[op.Value] = stack[:len(stack)-1]
			marks[j].cancelled = true
			marks[i].cancelled = true
		case Query:
			marks[i].cancelled = true
		default:
			return nil, fmt.Errorf("stream: op %d has invalid kind %d", i, op.Kind)
		}
	}
	var out []uint64
	for i, op := range ops {
		if op.Kind == Insert && !marks[i].cancelled {
			out = append(out, op.Value)
		}
	}
	return out, nil
}

// Validate checks that every delete in ops has a live matching insert and
// that every kind is known. It is Canonicalize without materializing A.
func Validate(ops []Op) error {
	live := make(map[uint64]int)
	for i, op := range ops {
		switch op.Kind {
		case Insert:
			live[op.Value]++
		case Delete:
			if live[op.Value] == 0 {
				return fmt.Errorf("stream: op %d deletes value %d with no live insert", i, op.Value)
			}
			live[op.Value]--
		case Query:
		default:
			return fmt.Errorf("stream: op %d has invalid kind %d", i, op.Kind)
		}
	}
	return nil
}

// Stats summarizes the composition of an operation sequence.
type Stats struct {
	Inserts int
	Deletes int
	Queries int
}

// Summarize counts the operations by kind.
func Summarize(ops []Op) Stats {
	var s Stats
	for _, op := range ops {
		switch op.Kind {
		case Insert:
			s.Inserts++
		case Delete:
			s.Deletes++
		case Query:
			s.Queries++
		}
	}
	return s
}

// WithDeletions builds a mixed insert/delete sequence from an insert-only
// value sequence: each original insert is emitted in order, and with
// probability delFrac a delete of a currently live value is interleaved
// (chosen uniformly from the live multiset). The result satisfies Validate
// by construction, and the deletion count of *every prefix* is capped at
// the delFrac/(1+delFrac) fraction of the prefix length — the regime
// Theorem 2.1's analysis assumes (at most 1/5 of any prefix when
// delFrac = 0.25). A delete whose emission would breach the cap is simply
// skipped, so delFrac is an upper target, not an exact rate.
//
// The deleted value is drawn uniformly from the live items, so the
// canonical multiset remains a uniform thinning of the original sequence.
func WithDeletions(values []uint64, delFrac float64, seed uint64) []Op {
	if delFrac < 0 {
		delFrac = 0
	}
	capFrac := delFrac / (1 + delFrac)
	r := xrand.New(seed)
	ops := make([]Op, 0, int(float64(len(values))*(1+delFrac))+1)
	// Live multiset maintained as a slice for O(1) uniform removal.
	live := make([]uint64, 0, len(values))
	deletes := 0
	for _, v := range values {
		ops = append(ops, Op{Kind: Insert, Value: v})
		live = append(live, v)
		withinCap := float64(deletes+1) <= capFrac*float64(len(ops)+1)
		if delFrac > 0 && withinCap && r.Float64() < delFrac && len(live) > 1 {
			i := r.Intn(len(live))
			victim := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			ops = append(ops, Op{Kind: Delete, Value: victim})
			deletes++
		}
	}
	return ops
}

// InsertDeleteChurn builds a sequence that inserts all values, then applies
// rounds of churn: each round deletes k random live items and reinserts k
// fresh draws from the provided generator. It models the paper's "data
// warehouse" scenario in which the relation is updated in batches (§5).
func InsertDeleteChurn(values []uint64, rounds, k int, next func() uint64, seed uint64) []Op {
	r := xrand.New(seed)
	ops := FromValues(values)
	live := append([]uint64(nil), values...)
	for round := 0; round < rounds; round++ {
		for j := 0; j < k && len(live) > 0; j++ {
			i := r.Intn(len(live))
			victim := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			ops = append(ops, Op{Kind: Delete, Value: victim})
		}
		for j := 0; j < k; j++ {
			v := next()
			ops = append(ops, Op{Kind: Insert, Value: v})
			live = append(live, v)
		}
		ops = append(ops, Op{Kind: Query})
	}
	return ops
}

// Tracker is the minimal update interface a tracking algorithm exposes to
// the replayer. Both the exact engine and every sketch in this repository
// satisfy it (the exact engine via a tiny adapter).
type Tracker interface {
	Insert(v uint64)
	Delete(v uint64) error
}

// Replay feeds every insert/delete in ops to tr, calling onQuery (if
// non-nil) at each Query op with the index of that op. It stops at the
// first error.
func Replay(ops []Op, tr Tracker, onQuery func(opIndex int)) error {
	for i, op := range ops {
		switch op.Kind {
		case Insert:
			tr.Insert(op.Value)
		case Delete:
			if err := tr.Delete(op.Value); err != nil {
				return fmt.Errorf("stream: replay op %d: %w", i, err)
			}
		case Query:
			if onQuery != nil {
				onQuery(i)
			}
		default:
			return fmt.Errorf("stream: replay op %d: invalid kind %d", i, op.Kind)
		}
	}
	return nil
}

// BatchReplay models the §5 offline warehouse mode: the operation log is
// applied in batches of batchSize update operations; after each batch,
// onBatch is invoked (e.g. to run queries against the freshly caught-up
// tracker). Query ops inside the log are ignored in this mode — queries
// happen between batches. It returns the number of batches applied.
func BatchReplay(ops []Op, tr Tracker, batchSize int, onBatch func(applied int)) (int, error) {
	if batchSize <= 0 {
		return 0, fmt.Errorf("stream: batch size %d must be positive", batchSize)
	}
	batches := 0
	inBatch := 0
	applied := 0
	flush := func() {
		if inBatch > 0 {
			batches++
			if onBatch != nil {
				onBatch(applied)
			}
			inBatch = 0
		}
	}
	for i, op := range ops {
		switch op.Kind {
		case Insert:
			tr.Insert(op.Value)
		case Delete:
			if err := tr.Delete(op.Value); err != nil {
				return batches, fmt.Errorf("stream: batch replay op %d: %w", i, err)
			}
		case Query:
			continue
		}
		applied++
		inBatch++
		if inBatch == batchSize {
			flush()
		}
	}
	flush()
	return batches, nil
}
