package stream

import (
	"testing"
	"testing/quick"

	"amstrack/internal/exact"
	"amstrack/internal/xrand"
)

func TestOpKindString(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" || Query.String() != "query" {
		t.Fatal("OpKind names wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatalf("unknown kind string = %q", OpKind(9).String())
	}
}

func TestFromValues(t *testing.T) {
	ops := FromValues([]uint64{3, 1, 4})
	if len(ops) != 3 {
		t.Fatalf("len = %d", len(ops))
	}
	for i, v := range []uint64{3, 1, 4} {
		if ops[i].Kind != Insert || ops[i].Value != v {
			t.Fatalf("ops[%d] = %+v", i, ops[i])
		}
	}
}

func TestCanonicalizeInsertOnly(t *testing.T) {
	vals := []uint64{5, 5, 7}
	got, err := Canonicalize(FromValues(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 5 || got[1] != 5 || got[2] != 7 {
		t.Fatalf("canonical = %v", got)
	}
}

func TestCanonicalizeCancelsMostRecent(t *testing.T) {
	// insert 1, insert 2, insert 1, delete 1 → surviving sequence is (1, 2):
	// the delete cancels the SECOND insert of 1 (the most recent), so the
	// first insert's position survives.
	ops := []Op{
		{Kind: Insert, Value: 1}, {Kind: Insert, Value: 2}, {Kind: Insert, Value: 1}, {Kind: Delete, Value: 1},
	}
	got, err := Canonicalize(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("canonical = %v, want [1 2]", got)
	}
}

func TestCanonicalizeDropsQueries(t *testing.T) {
	ops := []Op{{Kind: Insert, Value: 1}, {Kind: Query, Value: 0}, {Kind: Insert, Value: 2}}
	got, err := Canonicalize(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("canonical = %v", got)
	}
}

func TestCanonicalizeInvalidDelete(t *testing.T) {
	if _, err := Canonicalize([]Op{{Kind: Delete, Value: 1}}); err == nil {
		t.Fatal("delete-before-insert did not error")
	}
	if _, err := Canonicalize([]Op{{Kind: Insert, Value: 1}, {Kind: Delete, Value: 1}, {Kind: Delete, Value: 1}}); err == nil {
		t.Fatal("double delete did not error")
	}
}

func TestCanonicalizeInvalidKind(t *testing.T) {
	if _, err := Canonicalize([]Op{{Kind: OpKind(9)}}); err == nil {
		t.Fatal("invalid kind did not error")
	}
}

// TestCanonicalMultisetMatchesReplay: the canonical sequence must describe
// exactly the multiset left after replaying the full op sequence.
func TestCanonicalMultisetMatchesReplay(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		// Build a random valid op sequence from raw bytes.
		r := xrand.New(seed)
		var ops []Op
		live := map[uint64]int{}
		total := 0
		for _, x := range raw {
			v := uint64(x % 32)
			if r.Float64() < 0.3 && live[v] > 0 {
				ops = append(ops, Op{Kind: Delete, Value: v})
				live[v]--
				total--
			} else {
				ops = append(ops, Op{Kind: Insert, Value: v})
				live[v]++
				total++
			}
		}
		canon, err := Canonicalize(ops)
		if err != nil {
			return false
		}
		if len(canon) != total {
			return false
		}
		h := exact.FromValues(canon)
		for v, c := range live {
			if h.Frequency(v) != int64(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalPreservesOrder: surviving inserts appear in their original
// relative order.
func TestCanonicalPreservesOrder(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Value: 10}, {Kind: Insert, Value: 20}, {Kind: Insert, Value: 10}, {Kind: Insert, Value: 30},
		{Kind: Delete, Value: 10}, // cancels second insert of 10
		{Kind: Insert, Value: 40},
		{Kind: Delete, Value: 30},
	}
	got, err := Canonicalize(ops)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("canonical = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canonical = %v, want %v", got, want)
		}
	}
}

func TestValidateAgreesWithCanonicalize(t *testing.T) {
	good := []Op{{Kind: Insert, Value: 1}, {Kind: Delete, Value: 1}, {Kind: Insert, Value: 2}}
	if err := Validate(good); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	bad := []Op{{Kind: Insert, Value: 1}, {Kind: Delete, Value: 2}}
	if err := Validate(bad); err == nil {
		t.Fatal("invalid sequence accepted")
	}
	if err := Validate([]Op{{Kind: OpKind(7)}}); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]Op{{Kind: Insert, Value: 1}, {Kind: Insert, Value: 2}, {Kind: Delete, Value: 1}, {Kind: Query, Value: 0}})
	if s.Inserts != 2 || s.Deletes != 1 || s.Queries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWithDeletionsValid(t *testing.T) {
	r := xrand.New(9)
	values := make([]uint64, 5000)
	for i := range values {
		values[i] = r.Uint64n(100)
	}
	ops := WithDeletions(values, 0.2, 1)
	if err := Validate(ops); err != nil {
		t.Fatalf("WithDeletions produced invalid sequence: %v", err)
	}
	s := Summarize(ops)
	if s.Inserts != len(values) {
		t.Fatalf("inserts = %d, want %d", s.Inserts, len(values))
	}
	// Expected deletes ≈ 0.2 per insert.
	if s.Deletes < 700 || s.Deletes > 1300 {
		t.Fatalf("deletes = %d, want about 1000", s.Deletes)
	}
}

func TestWithDeletionsZeroFraction(t *testing.T) {
	ops := WithDeletions([]uint64{1, 2, 3}, 0, 1)
	if Summarize(ops).Deletes != 0 {
		t.Fatal("delFrac=0 produced deletes")
	}
	ops = WithDeletions([]uint64{1, 2, 3}, -1, 1)
	if Summarize(ops).Deletes != 0 {
		t.Fatal("negative delFrac produced deletes")
	}
}

func TestWithDeletionsPrefixInvariant(t *testing.T) {
	// The paper's deletion analysis assumes deletes are at most 1/5 of any
	// prefix (for delFrac 0.25 interleaved singly this holds after the
	// first few ops since a delete is always preceded by its insert).
	r := xrand.New(4)
	values := make([]uint64, 10000)
	for i := range values {
		values[i] = r.Uint64n(64)
	}
	ops := WithDeletions(values, 0.25, 7)
	// delFrac = 0.25 → prefix cap is 0.25/1.25 = 1/5 of every prefix.
	del, tot := 0, 0
	for _, op := range ops {
		tot++
		if op.Kind == Delete {
			del++
		}
		if float64(del) > 0.2*float64(tot)+1 {
			t.Fatalf("prefix %d has %d deletes (> 1/5)", tot, del)
		}
	}
}

type recordingTracker struct {
	inserted []uint64
	deleted  []uint64
}

func (r *recordingTracker) Insert(v uint64) { r.inserted = append(r.inserted, v) }
func (r *recordingTracker) Delete(v uint64) error {
	r.deleted = append(r.deleted, v)
	return nil
}

func TestReplay(t *testing.T) {
	tr := &recordingTracker{}
	queries := 0
	ops := []Op{{Kind: Insert, Value: 1}, {Kind: Query, Value: 0}, {Kind: Delete, Value: 1}, {Kind: Query, Value: 0}}
	if err := Replay(ops, tr, func(int) { queries++ }); err != nil {
		t.Fatal(err)
	}
	if len(tr.inserted) != 1 || len(tr.deleted) != 1 || queries != 2 {
		t.Fatalf("replay visited wrong ops: %+v queries=%d", tr, queries)
	}
}

func TestReplayNilOnQuery(t *testing.T) {
	tr := &recordingTracker{}
	if err := Replay([]Op{{Kind: Query, Value: 0}}, tr, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplayInvalidKind(t *testing.T) {
	tr := &recordingTracker{}
	if err := Replay([]Op{{Kind: OpKind(8)}}, tr, nil); err == nil {
		t.Fatal("invalid kind accepted by Replay")
	}
}

func TestInsertDeleteChurnValid(t *testing.T) {
	r := xrand.New(2)
	base := make([]uint64, 1000)
	for i := range base {
		base[i] = r.Uint64n(50)
	}
	next := func() uint64 { return r.Uint64n(50) }
	ops := InsertDeleteChurn(base, 5, 100, next, 3)
	if err := Validate(ops); err != nil {
		t.Fatalf("churn sequence invalid: %v", err)
	}
	s := Summarize(ops)
	if s.Queries != 5 {
		t.Fatalf("queries = %d, want 5", s.Queries)
	}
	if s.Inserts != 1000+500 || s.Deletes != 500 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBatchReplay(t *testing.T) {
	tr := &recordingTracker{}
	ops := FromValues([]uint64{1, 2, 3, 4, 5, 6, 7})
	var sizes []int
	n, err := BatchReplay(ops, tr, 3, func(applied int) { sizes = append(sizes, applied) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("batches = %d, want 3", n)
	}
	// Cumulative applied counts after each batch: 3, 6, 7.
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 6 || sizes[2] != 7 {
		t.Fatalf("batch sizes = %v", sizes)
	}
}

func TestBatchReplaySkipsQueries(t *testing.T) {
	tr := &recordingTracker{}
	ops := []Op{{Kind: Insert, Value: 1}, {Kind: Query, Value: 0}, {Kind: Insert, Value: 2}}
	n, err := BatchReplay(ops, tr, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(tr.inserted) != 2 {
		t.Fatalf("batches=%d inserted=%v", n, tr.inserted)
	}
}

func TestBatchReplayBadSize(t *testing.T) {
	if _, err := BatchReplay(nil, &recordingTracker{}, 0, nil); err == nil {
		t.Fatal("batchSize=0 accepted")
	}
}

// failingTracker rejects deletes, to exercise error propagation.
type failingTracker struct{ recordingTracker }

func (f *failingTracker) Delete(v uint64) error {
	return errFail
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "boom" }

func TestReplayPropagatesDeleteError(t *testing.T) {
	if err := Replay([]Op{{Kind: Insert, Value: 1}, {Kind: Delete, Value: 1}}, &failingTracker{}, nil); err == nil {
		t.Fatal("delete error not propagated")
	}
	if _, err := BatchReplay([]Op{{Kind: Insert, Value: 1}, {Kind: Delete, Value: 1}}, &failingTracker{}, 1, nil); err == nil {
		t.Fatal("delete error not propagated by BatchReplay")
	}
}
