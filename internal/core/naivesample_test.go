package core

import (
	"math"
	"testing"

	"amstrack/internal/exact"
	"amstrack/internal/xrand"
)

func TestNewNaiveSampleRejectsBadConfig(t *testing.T) {
	if _, err := NewNaiveSample(Config{S1: 0, S2: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewNaiveSample(Config{S1: 1, S2: 1}); err == nil {
		t.Fatal("sample size 1 accepted (estimator needs s >= 2)")
	}
}

func TestNaiveSampleExactWhenSampleHoldsEverything(t *testing.T) {
	ns, err := NewNaiveSample(Config{S1: 100, S2: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	vals := []uint64{1, 1, 2, 3, 3, 3}
	for _, v := range vals {
		ns.Insert(v)
	}
	want := float64(exact.SelfJoinOf(vals))
	if got := ns.Estimate(); got != want {
		t.Fatalf("estimate = %v, want exact %v", got, want)
	}
}

func TestNaiveSampleDeleteUnsupported(t *testing.T) {
	ns, _ := NewNaiveSample(Config{S1: 4, S2: 1, Seed: 1})
	ns.Insert(1)
	if err := ns.Delete(1); err == nil {
		t.Fatal("Delete succeeded; baseline must reject deletions")
	}
}

func TestNaiveSampleReservoirUniform(t *testing.T) {
	// Reservoir of size 1... size must be >= 2, use 2. Each of n items
	// should appear in the reservoir with probability s/n.
	const n = 100
	const seeds = 5000
	counts := make([]int, n)
	for seed := uint64(0); seed < seeds; seed++ {
		ns, _ := NewNaiveSample(Config{S1: 2, S2: 1, Seed: seed})
		for i := 0; i < n; i++ {
			ns.Insert(uint64(i))
		}
		for _, v := range ns.Sample() {
			counts[v]++
		}
	}
	// Expected 2*seeds/n = 100 per item; 6 sigma ≈ 60.
	for i, c := range counts {
		if math.Abs(float64(c)-100) > 70 {
			t.Fatalf("item %d sampled %d times, want about 100", i, c)
		}
	}
}

func TestNaiveSampleUnbiasedOverSeeds(t *testing.T) {
	r := xrand.New(44)
	vals := make([]uint64, 3000)
	for i := range vals {
		vals[i] = r.Uint64n(30)
	}
	sj := float64(exact.SelfJoinOf(vals))
	const seeds = 800
	sum := 0.0
	for seed := uint64(0); seed < seeds; seed++ {
		ns, _ := NewNaiveSample(Config{S1: 50, S2: 1, Seed: seed})
		for _, v := range vals {
			ns.Insert(v)
		}
		sum += ns.Estimate()
	}
	mean := sum / seeds
	if math.Abs(mean-sj)/sj > 0.1 {
		t.Fatalf("mean estimate %.0f deviates from SJ %.0f by more than 10%%", mean, sj)
	}
}

func TestNaiveSampleLemma23Blindspot(t *testing.T) {
	// Lemma 2.3: R1 = n distinct values, R2 = n/2 pairs. A sample of size
	// o(sqrt(n)) sees all-distinct values in both and estimates both as ~n,
	// although SJ(R2) = 2·SJ(R1). With n = 40000 and s = 20 (<< sqrt(n)),
	// the estimator must be fooled for most seeds.
	const n = 40000
	r1 := make([]uint64, n)
	r2 := make([]uint64, n)
	for i := 0; i < n; i++ {
		r1[i] = uint64(i)
		r2[i] = uint64(i / 2)
	}
	fooled := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		est := func(vals []uint64) float64 {
			ns, _ := NewNaiveSample(Config{S1: 20, S2: 1, Seed: seed})
			for _, v := range vals {
				ns.Insert(v)
			}
			return ns.Estimate()
		}
		e1, e2 := est(r1), est(r2)
		// SJ(R1) = n, SJ(R2) = 2n. "Fooled" = estimates within 25% of each
		// other although the truths differ by 2x.
		if math.Abs(e1-e2) < 0.25*math.Max(e1, e2) {
			fooled++
		}
	}
	if fooled < trials/2 {
		t.Fatalf("naive sampling fooled only %d/%d times; Lemma 2.3 predicts near-always at s << sqrt(n)", fooled, trials)
	}
}

func TestNaiveSampleLen(t *testing.T) {
	ns, _ := NewNaiveSample(Config{S1: 2, S2: 1, Seed: 1})
	for i := 0; i < 10; i++ {
		ns.Insert(uint64(i))
	}
	if ns.Len() != 10 {
		t.Fatalf("Len = %d", ns.Len())
	}
	if ns.MemoryWords() != 2 {
		t.Fatalf("MemoryWords = %d", ns.MemoryWords())
	}
	if got := len(ns.Sample()); got != 2 {
		t.Fatalf("sample size = %d", got)
	}
}

func TestNaiveSampleSampleIsCopy(t *testing.T) {
	ns, _ := NewNaiveSample(Config{S1: 2, S2: 1, Seed: 1})
	ns.Insert(5)
	ns.Insert(6)
	s := ns.Sample()
	s[0] = 999
	if ns.Sample()[0] == 999 {
		t.Fatal("Sample returned live slice")
	}
}

func BenchmarkNaiveSampleInsert(b *testing.B) {
	ns, _ := NewNaiveSample(Config{S1: 1024, S2: 1, Seed: 1})
	for i := 0; i < b.N; i++ {
		ns.Insert(uint64(i & 4095))
	}
}
