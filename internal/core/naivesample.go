package core

import (
	"errors"
	"fmt"

	"amstrack/internal/exact"
	"amstrack/internal/xrand"
)

// NaiveSample is the standard sampling baseline of §2.3: a uniform random
// sample of s items drawn without replacement from the insert sequence
// (maintained online with reservoir sampling [Vit85]), from which the
// self-join size is estimated by computing the sample's self-join size
// SJ(S) and scaling:
//
//	X = n + (SJ(S) − s)·n·(n−1) / (s·(s−1))
//
// which is unbiased because E[SJ(S) − s] counts sampled pairs of equal
// items, and each of the SJ(A) − n equal pairs of the data set is sampled
// with probability s(s−1)/(n(n−1)).
//
// Lemma 2.3 shows this estimator needs Ω(√n) samples in the worst case; it
// exists here as the paper's baseline. It supports insertions only — the
// paper analyzes it in the insert-only scenario, and uniform reservoir
// samples cannot in general survive adversarial deletions in O(s) space.
type NaiveSample struct {
	cfg    Config
	rng    *xrand.Rand
	size   int      // target sample size s
	sample []uint64 // current reservoir, len <= size
	n      int64    // items seen
}

// NewNaiveSample builds a naive-sampling tracker with sample size
// s = cfg.S1 · cfg.S2 (the grouping parameters do not apply: the estimator
// is a single scaled count, as in the paper).
func NewNaiveSample(cfg Config) (*NaiveSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := cfg.S1 * cfg.S2
	if s < 2 {
		return nil, fmt.Errorf("core: naive-sampling needs sample size >= 2, got %d", s)
	}
	return &NaiveSample{
		cfg:    cfg,
		rng:    xrand.New(cfg.Seed),
		size:   s,
		sample: make([]uint64, 0, s),
	}, nil
}

// Insert offers one item to the reservoir (Algorithm R).
func (ns *NaiveSample) Insert(v uint64) {
	ns.n++
	if len(ns.sample) < ns.size {
		ns.sample = append(ns.sample, v)
		return
	}
	if j := ns.rng.Uint64n(uint64(ns.n)); j < uint64(ns.size) {
		ns.sample[j] = v
	}
}

// Delete is unsupported: the baseline is defined for insert-only sequences
// (§2.3 considers "the simple scenario of a sequence A with only
// insertions").
func (ns *NaiveSample) Delete(v uint64) error {
	return errors.New("core: naive-sampling does not support deletions")
}

// Estimate returns the scaled estimator X. With fewer than 2 items seen the
// sample is the data set and the exact value is returned.
func (ns *NaiveSample) Estimate() float64 {
	s := int64(len(ns.sample))
	if ns.n <= int64(ns.size) || s < 2 {
		// Sample == data set; no scaling needed (and none defined).
		return float64(exact.SelfJoinOf(ns.sample))
	}
	sjS := float64(exact.SelfJoinOf(ns.sample))
	n := float64(ns.n)
	sf := float64(s)
	return n + (sjS-sf)*n*(n-1)/(sf*(sf-1))
}

// MemoryWords returns the sample size s.
func (ns *NaiveSample) MemoryWords() int { return ns.size }

// Len returns the number of items inserted.
func (ns *NaiveSample) Len() int64 { return ns.n }

// Config returns the tracker's configuration.
func (ns *NaiveSample) Config() Config { return ns.cfg }

// Sample returns a copy of the current reservoir contents.
func (ns *NaiveSample) Sample() []uint64 {
	out := make([]uint64, len(ns.sample))
	copy(out, ns.sample)
	return out
}

// Interface conformance checks.
var (
	_ Tracker = (*TugOfWar)(nil)
	_ Tracker = (*SampleCount)(nil)
	_ Tracker = (*NaiveSample)(nil)
)
