package core

// Skimmed self-join estimation (Rafiei–Deng / "skimmed sketches"): split
// the frequency vector f = f̂ + r, where f̂ is the heavy-hitter table's
// deterministic estimate (supported on its tracked values) and r the
// residual, and estimate
//
//	SJ = Σ f̂² + [cross + tail]
//
// with the exact part computed from the table and the bracket from the
// sketch. The sketch here is INGEST-COMPLETE — every update flowed into
// it, skimmed or not — so the bracket telescopes per row by linearity:
//
//	X_j(S) − X_j(Ŝ) = X_j(r) + 2⟨z(f̂), z(r)⟩_j
//
// where Ŝ = SetFrequencies(f̂) is a scratch sketch from the same family.
// Each row term Σf̂² + X_j(S) − X_j(Ŝ) is an unbiased estimator of SJ for
// ANY deterministic f̂ (f̂ is a function of the stream alone, independent
// of the hash draws), so heavy-hitter inaccuracy only costs variance,
// never bias. When f̂ captures the big frequencies the residual counters
// are small and the variance — driven by SJ(r)² instead of SJ(f)² —
// collapses, which is the whole point on zipf data.

// SkimmedEstimate returns the skimmed self-join estimate from an
// ingest-complete sketch and its relation's heavy-hitter table: the
// median over rows of Σf̂² + X_j(S) − X_j(Ŝ). f̂ is the table's
// GUARANTEED mass (count − err, see SkimFrequencies): skimming only
// what is certainly there keeps the residual r = f − f̂ nonnegative and
// small, so on unskewed streams — where the table guarantees nothing —
// the estimator degrades to the plain sketch instead of paying variance
// for inflated table counts.
func SkimmedEstimate(t *FastTugOfWar, hh *SpaceSaving) float64 {
	freq := hh.SkimFrequencies()
	exact := 0.0
	for _, f := range freq {
		exact += float64(f) * float64(f)
	}
	scratch, err := NewFastTugOfWar(t.cfg)
	if err != nil {
		// t's config was already validated at construction.
		panic(err)
	}
	scratch.SetFrequencies(freq)
	s1, s2 := t.cfg.S1, t.cfg.S2
	sums := make([]float64, s2)
	for j := 0; j < s2; j++ {
		full, skim := 0.0, 0.0
		for i := j * s1; i < (j+1)*s1; i++ {
			full += float64(t.z[i]) * float64(t.z[i])
			skim += float64(scratch.z[i]) * float64(scratch.z[i])
		}
		sums[j] = exact + full - skim
	}
	return Median(sums)
}
