package core

import (
	"testing"
	"testing/quick"

	"amstrack/internal/xrand"
)

// TestTugOfWarBlobTruncationNeverPanics injects failure at every possible
// truncation point: UnmarshalBinary must return an error (or reconstruct a
// valid sketch for the full blob), never panic or accept a prefix.
func TestTugOfWarBlobTruncationNeverPanics(t *testing.T) {
	tw, _ := NewTugOfWar(Config{S1: 4, S2: 2, Seed: 3})
	for i := 0; i < 100; i++ {
		tw.Insert(uint64(i % 7))
	}
	blob, err := tw.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		var back TugOfWar
		if err := back.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(blob))
		}
	}
	var back TugOfWar
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatalf("full blob rejected: %v", err)
	}
}

// TestTugOfWarBlobBitFlipsDetected flips each byte of the blob once; every
// mutation must be rejected (the payload is fully covered by the CRC).
func TestTugOfWarBlobBitFlipsDetected(t *testing.T) {
	tw, _ := NewTugOfWar(Config{S1: 2, S2: 2, Seed: 9})
	tw.Insert(5)
	blob, _ := tw.MarshalBinary()
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x01
		var back TugOfWar
		if err := back.UnmarshalBinary(mut); err == nil {
			// A flip in the CRC field itself must also fail (checksum
			// mismatch), so no byte may be silently accepted.
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

// TestGoldenBlobFormat pins the serialization layout so future edits that
// silently change the wire format fail loudly.
func TestGoldenBlobFormat(t *testing.T) {
	tw, _ := NewTugOfWar(Config{S1: 1, S2: 1, Seed: 0})
	tw.Insert(1)
	blob, _ := tw.MarshalBinary()
	// magic(4) + version(1) + s1(8) + s2(8) + seed(8) + n(8) + 1 counter(8)
	// + crc(4): the shared internal/blob frame around the sketch payload.
	if len(blob) != 49 {
		t.Fatalf("blob length = %d, want 49", len(blob))
	}
	if blob[0] != 0x01 || blob[1] != 0x70 || blob[2] != 0x51 || blob[3] != 0xA0 {
		t.Fatalf("magic bytes = % x", blob[:4])
	}
	if blob[4] != 1 {
		t.Fatalf("version byte = %#x, want 1", blob[4])
	}
	// s1 = 1 little endian.
	if blob[5] != 1 || blob[6] != 0 {
		t.Fatalf("s1 bytes = % x", blob[5:13])
	}
}

func TestSetFrequenciesNegativeAndZero(t *testing.T) {
	// The sketch is defined on any integer frequency vector; loading f and
	// then -f must cancel, and zero frequencies must be no-ops.
	f := func(vals []uint8, seed uint64) bool {
		cfg := Config{S1: 4, S2: 2, Seed: seed}
		a, _ := NewTugOfWar(cfg)
		freq := map[uint64]int64{}
		for _, v := range vals {
			freq[uint64(v%16)]++
		}
		freq[99] = 0
		neg := map[uint64]int64{}
		for v, c := range freq {
			neg[v] = -c
		}
		a.SetFrequencies(freq)
		b, _ := NewTugOfWar(cfg)
		b.SetFrequencies(neg)
		if err := a.Merge(b); err != nil {
			return false
		}
		for _, z := range a.RawCounters() {
			if z != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeCommutativeAssociative: merging per-partition sketches must be
// order-insensitive.
func TestMergeCommutativeAssociative(t *testing.T) {
	cfg := Config{S1: 8, S2: 2, Seed: 21}
	mk := func(seed uint64, n int) *TugOfWar {
		tw, _ := NewTugOfWar(cfg)
		r := xrand.New(seed)
		for i := 0; i < n; i++ {
			tw.Insert(r.Uint64n(64))
		}
		return tw
	}
	abc1 := mk(1, 500)
	_ = abc1.Merge(mk(2, 600))
	_ = abc1.Merge(mk(3, 700))

	abc2 := mk(3, 700)
	_ = abc2.Merge(mk(1, 500))
	_ = abc2.Merge(mk(2, 600))

	z1, z2 := abc1.RawCounters(), abc2.RawCounters()
	for k := range z1 {
		if z1[k] != z2[k] {
			t.Fatalf("merge order changed counter %d: %d vs %d", k, z1[k], z2[k])
		}
	}
}

// TestMedianProperties: quick-check the Median helper against ordering
// invariants.
func TestMedianProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		minV, maxV := float64(raw[0]), float64(raw[0])
		for i, v := range raw {
			xs[i] = float64(v)
			if xs[i] < minV {
				minV = xs[i]
			}
			if xs[i] > maxV {
				maxV = xs[i]
			}
		}
		m := Median(xs)
		if m < minV || m > maxV {
			return false
		}
		// Permutation invariance: reverse and recompute.
		rev := make([]float64, len(xs))
		for i := range xs {
			rev[i] = xs[len(xs)-1-i]
		}
		return Median(rev) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
