package core

import (
	"sync"
	"testing"

	"amstrack/internal/xrand"
)

func TestShardedMatchesSingleStream(t *testing.T) {
	cfg := Config{S1: 16, S2: 4, Seed: 9}
	st, err := NewShardedTugOfWar(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := NewTugOfWar(cfg)
	r := xrand.New(3)
	for i := 0; i < 20000; i++ {
		v := r.Uint64n(500)
		st.Insert(v)
		single.Insert(v)
	}
	if st.Estimate() != single.Estimate() {
		t.Fatalf("sharded %v != single %v", st.Estimate(), single.Estimate())
	}
	if st.Len() != single.Len() {
		t.Fatalf("Len %d != %d", st.Len(), single.Len())
	}
}

func TestShardedConcurrentIngest(t *testing.T) {
	cfg := Config{S1: 16, S2: 4, Seed: 11}
	st, err := NewShardedTugOfWar(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := NewTugOfWar(cfg)

	const workers = 8
	const perWorker = 5000
	values := make([][]uint64, workers)
	for w := range values {
		r := xrand.New(uint64(w) + 100)
		values[w] = make([]uint64, perWorker)
		for i := range values[w] {
			values[w][i] = r.Uint64n(300)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, v := range values[w] {
				if w%2 == 0 && i%7 == 6 {
					// Interleave deletes of a value this worker inserted.
					_ = st.Delete(values[w][i-1])
				}
				st.Insert(v)
			}
		}(w)
	}
	wg.Wait()
	// Replay the same multiset serially.
	for w := 0; w < workers; w++ {
		for i, v := range values[w] {
			if w%2 == 0 && i%7 == 6 {
				_ = single.Delete(values[w][i-1])
			}
			single.Insert(v)
		}
	}
	if st.Estimate() != single.Estimate() {
		t.Fatalf("concurrent sharded %v != serial %v", st.Estimate(), single.Estimate())
	}
}

func TestShardedConcurrentQueries(t *testing.T) {
	st, err := NewShardedTugOfWar(Config{S1: 8, S2: 2, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := xrand.New(1)
		for {
			select {
			case <-stop:
				return
			default:
				st.Insert(r.Uint64n(100))
			}
		}
	}()
	for q := 0; q < 50; q++ {
		if est := st.Estimate(); est < 0 {
			t.Errorf("negative estimate %v", est)
		}
	}
	close(stop)
	wg.Wait()
}

func TestShardedSnapshotIsPlainSketch(t *testing.T) {
	cfg := Config{S1: 8, S2: 2, Seed: 5}
	st, _ := NewShardedTugOfWar(cfg, 2)
	for i := 0; i < 1000; i++ {
		st.Insert(uint64(i % 37))
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Estimate() != st.Estimate() {
		t.Fatal("snapshot estimate differs")
	}
	// Snapshots serialize like any other sketch.
	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back TugOfWar
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != snap.Estimate() {
		t.Fatal("serialized snapshot diverged")
	}
}

func TestShardedShardCounts(t *testing.T) {
	st, _ := NewShardedTugOfWar(Config{S1: 2, S2: 2, Seed: 1}, 3)
	if st.Shards() != 4 {
		t.Fatalf("shards = %d, want next power of two 4", st.Shards())
	}
	if st.MemoryWords() != 4*4 {
		t.Fatalf("memory = %d", st.MemoryWords())
	}
	if _, err := NewShardedTugOfWar(Config{S1: 2, S2: 2}, -1); err == nil {
		t.Fatal("negative shards accepted")
	}
	if _, err := NewShardedTugOfWar(Config{S1: 0, S2: 2}, 2); err == nil {
		t.Fatal("bad config accepted")
	}
	auto, _ := NewShardedTugOfWar(Config{S1: 2, S2: 2, Seed: 1}, 0)
	if auto.Shards() < 1 {
		t.Fatal("auto shard count < 1")
	}
}

func BenchmarkShardedInsertParallel(b *testing.B) {
	st, _ := NewShardedTugOfWar(Config{S1: 32, S2: 8, Seed: 1}, 0)
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(uint64(b.N))
		for pb.Next() {
			st.Insert(r.Uint64n(1 << 14))
		}
	})
}
