package core

import (
	"errors"

	"amstrack/internal/blob"
	"amstrack/internal/hash"
	"amstrack/internal/xrand"
)

// FastTugOfWar is the bucketed tug-of-war sketch (Fast-AMS): the estimator
// of Thorup & Zhang (SODA 2004) / Cormode & Garofalakis that keeps the
// accuracy of §2.2's flat sketch while making the update cost independent
// of the accuracy parameter S1.
//
// Layout: S2 rows, each with S1 counters and its own tabulation hash. An
// update hashes the value ONCE per row; the high output bits select a
// bucket b, the low bit a sign ε, and only Z[j][b] += ε is touched — O(S2)
// work per update versus the flat sketch's O(S1·S2).
//
// Estimator: per row, X_j = Σ_b Z[j][b]²; the answer is the median over
// rows. Writing f_v for the frequencies, E[X_j] = Σ_v f_v² = SJ exactly
// (signs are pairwise independent across distinct values), and
// Var(X_j) ≤ 2·SJ²/S1 — the same bound as a row of S1 averaged independent
// tug-of-war estimators, because two distinct values only interact when
// the bucket hash collides them (probability 1/S1) and the sign hash is
// four-wise independent (Thorup–Zhang Theorem 1). Theorem 2.2's guarantee
// therefore carries over verbatim: relative error ≤ 4/√S1 with probability
// ≥ 1 − 2^(−S2/2).
//
// Like the flat sketch, the counters are a linear function of the
// frequency vector: deletions are exact, sketches with equal Config merge
// by addition, and SetFrequencies is bit-identical to streaming.
type FastTugOfWar struct {
	cfg     Config
	rows    []hash.Tab4 // one tabulation hash per row (group)
	z       []int64     // counters, row-major: row j occupies [j*S1, (j+1)*S1)
	n       int64       // current multiset size (diagnostics only)
	scratch []float64   // reusable buffer for row sums
}

// NewFastTugOfWar builds a bucketed tug-of-war tracker. As with NewTugOfWar,
// the hash family is derived deterministically from cfg.Seed, so equal
// Configs yield mergeable sketches. The row hashes use a seed stream
// disjoint from the flat sketch's counter hashes, so the two trackers are
// statistically independent even under one seed.
func NewFastTugOfWar(cfg Config) (*FastTugOfWar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &FastTugOfWar{
		cfg:     cfg,
		rows:    make([]hash.Tab4, cfg.S2),
		z:       make([]int64, cfg.S1*cfg.S2),
		scratch: make([]float64, cfg.S2),
	}
	for j := range t.rows {
		t.rows[j] = hash.NewTab4(fastRowSeed(cfg.Seed, j))
	}
	return t, nil
}

// fastRowSeed derives row j's hash seed from the master seed.
func fastRowSeed(seed uint64, j int) uint64 {
	return xrand.Mix64(seed ^ (uint64(j)+1)*0xbf58476d1ce4e5b9)
}

// bucket maps a hash output to a row-local counter index in [0, s1) using
// the high 32 output bits (disjoint from the sign bit, so bucket and sign
// are jointly four-wise independent). The multiply-shift reduction is
// unbiased up to s1/2^32, negligible for any practical row width.
func bucket(h uint64, s1 int) int {
	return int((h >> 32) * uint64(s1) >> 32)
}

// Insert adds one occurrence of v. O(S2) time — one hash evaluation and one
// counter touch per row, independent of S1.
func (t *FastTugOfWar) Insert(v uint64) {
	s1 := t.cfg.S1
	for j := range t.rows {
		h := t.rows[j].Hash(v)
		t.z[j*s1+bucket(h, s1)] += int64(h&1)*2 - 1
	}
	t.n++
}

// Delete removes one occurrence of v. Exact, by linearity (see
// TugOfWar.Delete for the contract on the op sequence).
func (t *FastTugOfWar) Delete(v uint64) error {
	s1 := t.cfg.S1
	for j := range t.rows {
		h := t.rows[j].Hash(v)
		t.z[j*s1+bucket(h, s1)] -= int64(h&1)*2 - 1
	}
	t.n--
	return nil
}

// InsertBatch adds every value in vs. The row loop is hoisted outside the
// value loop so each row's tables and counters stay cache-resident for the
// whole batch — measurably faster than per-value Insert on large batches.
func (t *FastTugOfWar) InsertBatch(vs []uint64) {
	t.applyBatch(vs, +1)
	t.n += int64(len(vs))
}

// DeleteBatch removes every value in vs.
func (t *FastTugOfWar) DeleteBatch(vs []uint64) error {
	t.applyBatch(vs, -1)
	t.n -= int64(len(vs))
	return nil
}

func (t *FastTugOfWar) applyBatch(vs []uint64, dir int64) {
	s1 := t.cfg.S1
	for j := range t.rows {
		row := t.z[j*s1 : (j+1)*s1 : (j+1)*s1]
		hj := t.rows[j]
		for _, v := range vs {
			h := hj.Hash(v)
			row[bucket(h, s1)] += dir * (int64(h&1)*2 - 1)
		}
	}
}

// Estimate returns the median over rows of Σ_b Z². O(S1·S2) — queries pay
// the full sketch scan, updates do not.
func (t *FastTugOfWar) Estimate() float64 {
	return fastEstimate(t.z, t.cfg.S1, t.cfg.S2, t.scratch)
}

// fastEstimate computes the Fast-AMS estimator — the median over s2 rows
// of the row bucket sums Σ_b z² — from a row-major counter array. Shared
// with ShardedFastTugOfWar, whose query path merges raw counters without
// materializing a full sketch.
func fastEstimate(z []int64, s1, s2 int, scratch []float64) float64 {
	for j := 0; j < s2; j++ {
		sum := 0.0
		for _, v := range z[j*s1 : (j+1)*s1] {
			sum += float64(v) * float64(v)
		}
		scratch[j] = sum
	}
	return Median(scratch)
}

// MemoryWords returns S1·S2: one word per counter, the paper's storage
// unit. The tabulation tables add a fixed 64 KiB per row that does not
// scale with S1 (the accuracy knob), which is the point of the scheme.
func (t *FastTugOfWar) MemoryWords() int { return len(t.z) }

// Len returns the current multiset size implied by the update stream.
func (t *FastTugOfWar) Len() int64 { return t.n }

// Config returns the tracker's configuration.
func (t *FastTugOfWar) Config() Config { return t.cfg }

// Counters returns a copy of the raw counters (row-major, row j at
// [j*S1, (j+1)*S1)).
func (t *FastTugOfWar) Counters() []int64 {
	out := make([]int64, len(t.z))
	copy(out, t.z)
	return out
}

// SetFrequencies loads the sketch directly from a frequency vector,
// replacing the current state. Bit-identical to streaming every occurrence
// (linearity); one hash evaluation per (row, distinct value).
func (t *FastTugOfWar) SetFrequencies(freq map[uint64]int64) {
	for k := range t.z {
		t.z[k] = 0
	}
	t.n = 0
	s1 := t.cfg.S1
	for v, f := range freq {
		for j := range t.rows {
			h := t.rows[j].Hash(v)
			t.z[j*s1+bucket(h, s1)] += (int64(h&1)*2 - 1) * f
		}
		t.n += f
	}
}

// Merge adds the counters of other into t. Equal Configs share one hash
// family, so the merged sketch is exactly the sketch of the concatenated
// streams.
func (t *FastTugOfWar) Merge(other *FastTugOfWar) error {
	if t.cfg != other.cfg {
		return errors.New("core: cannot merge fast tug-of-war sketches with different configs")
	}
	for k := range t.z {
		t.z[k] += other.z[k]
	}
	t.n += other.n
	return nil
}

// MarshalBinary serializes the sketch in the same payload layout as
// TugOfWar's format under a distinct magic, via the shared blob codec.
// Hash tables are re-derived from the seed on load, so blobs stay small.
func (t *FastTugOfWar) MarshalBinary() ([]byte, error) {
	return marshalSketch(blob.MagicFastTugOfWar, t.cfg, t.n, t.z), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (t *FastTugOfWar) UnmarshalBinary(data []byte) error {
	cfg, n, z, err := unmarshalSketch(blob.MagicFastTugOfWar, "fast tug-of-war", data)
	if err != nil {
		return err
	}
	fresh, err := NewFastTugOfWar(cfg)
	if err != nil {
		return err
	}
	fresh.n = n
	copy(fresh.z, z)
	*t = *fresh
	return nil
}

var _ Tracker = (*FastTugOfWar)(nil)
