package core

import (
	"fmt"
	"runtime"
	"sync"
)

// ShardedFastTugOfWar is the concurrent-ingest wrapper around FastTugOfWar,
// mirroring ShardedTugOfWar: every shard is an independent FastTugOfWar
// over the SAME hash family, so by linearity the sum of shard counters
// equals the single-stream sketch no matter how updates are distributed.
// With O(S2) per-update work the lock hold times are tiny, which is where
// the sharded fast sketch earns its keep: parallel loaders spend their
// time hashing, not serialized on counter arrays.
type ShardedFastTugOfWar struct {
	cfg    Config
	shards []fastShard
	mask   uint64
}

type fastShard struct {
	mu sync.Mutex
	tw *FastTugOfWar
	_  [40]byte // pad to reduce false sharing between shard locks
}

// NewShardedFastTugOfWar builds a concurrent fast sketch with the given
// number of shards (rounded up to a power of two; 0 means GOMAXPROCS).
func NewShardedFastTugOfWar(cfg Config, shards int) (*ShardedFastTugOfWar, error) {
	if shards < 0 {
		return nil, fmt.Errorf("core: negative shard count %d", shards)
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &ShardedFastTugOfWar{cfg: cfg, shards: make([]fastShard, n), mask: uint64(n - 1)}
	for i := range st.shards {
		tw, err := NewFastTugOfWar(cfg)
		if err != nil {
			return nil, err
		}
		st.shards[i].tw = tw
	}
	return st, nil
}

// Shards returns the shard count.
func (st *ShardedFastTugOfWar) Shards() int { return len(st.shards) }

// shardFor spreads values across shards via the shared shardIndex mix.
func (st *ShardedFastTugOfWar) shardFor(v uint64) *fastShard {
	return &st.shards[shardIndex(v, st.mask)]
}

// Insert adds one occurrence of v; safe for concurrent use.
func (st *ShardedFastTugOfWar) Insert(v uint64) {
	s := st.shardFor(v)
	s.mu.Lock()
	s.tw.Insert(v)
	s.mu.Unlock()
}

// Delete removes one occurrence of v; safe for concurrent use.
func (st *ShardedFastTugOfWar) Delete(v uint64) error {
	s := st.shardFor(v)
	s.mu.Lock()
	err := s.tw.Delete(v)
	s.mu.Unlock()
	return err
}

// InsertBatch partitions vs by shard, then applies each group under a
// single lock acquisition, so concurrent loaders contend once per batch
// per shard instead of once per value. Safe for concurrent use.
func (st *ShardedFastTugOfWar) InsertBatch(vs []uint64) {
	st.applyBatch(vs, false)
}

// DeleteBatch removes every value in vs; safe for concurrent use. Fast
// tug-of-war deletes always succeed.
func (st *ShardedFastTugOfWar) DeleteBatch(vs []uint64) error {
	st.applyBatch(vs, true)
	return nil
}

func (st *ShardedFastTugOfWar) applyBatch(vs []uint64, del bool) {
	for i, g := range groupByShard(vs, len(st.shards), st.mask) {
		if len(g) == 0 {
			continue
		}
		s := &st.shards[i]
		s.mu.Lock()
		if del {
			_ = s.tw.DeleteBatch(g)
		} else {
			s.tw.InsertBatch(g)
		}
		s.mu.Unlock()
	}
}

// ShardInsertBatch applies the whole batch to shard i's counters under
// that single shard's lock, SKIPPING the value-hash routing: by
// linearity ANY assignment of updates to shards yields the same merged
// counters, so a caller that already owns a partition of the stream
// (e.g. one engine absorber) can pin its updates to one shard and pay
// one uncontended lock per batch instead of a grouping pass plus one
// lock per sketch shard.
func (st *ShardedFastTugOfWar) ShardInsertBatch(i int, vs []uint64) {
	s := &st.shards[i&int(st.mask)]
	s.mu.Lock()
	s.tw.InsertBatch(vs)
	s.mu.Unlock()
}

// ShardDeleteBatch is ShardInsertBatch for deletions. A shard's local
// counters may go transiently negative under pinned assignment; the
// merged sketch is exact whenever the overall op sequence is valid.
func (st *ShardedFastTugOfWar) ShardDeleteBatch(i int, vs []uint64) {
	s := &st.shards[i&int(st.mask)]
	s.mu.Lock()
	_ = s.tw.DeleteBatch(vs)
	s.mu.Unlock()
}

// Estimate sums the shard counters and answers the query directly — no
// Snapshot, so no regeneration of the 64 KiB-per-row hash tables that a
// full FastTugOfWar would carry but a read-only merge never uses. Safe for
// concurrent use with updates; the estimate reflects some linearization of
// the concurrent operations.
func (st *ShardedFastTugOfWar) Estimate() float64 {
	z := make([]int64, st.cfg.S1*st.cfg.S2)
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		for k, v := range s.tw.z {
			z[k] += v
		}
		s.mu.Unlock()
	}
	return fastEstimate(z, st.cfg.S1, st.cfg.S2, make([]float64, st.cfg.S2))
}

// Snapshot returns a plain FastTugOfWar equal to the merge of all shards.
func (st *ShardedFastTugOfWar) Snapshot() (*FastTugOfWar, error) {
	merged, err := NewFastTugOfWar(st.cfg)
	if err != nil {
		return nil, err
	}
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		err = merged.Merge(s.tw)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// ShardSnapshot returns a plain FastTugOfWar equal to shard i alone,
// cloned under that single shard's lock. A caller that owns a partition
// of the stream (one engine absorber per shard) can snapshot each shard
// from its own writer and merge the clones — by linearity the merge
// equals Snapshot, without ever holding more than one shard lock.
func (st *ShardedFastTugOfWar) ShardSnapshot(i int) (*FastTugOfWar, error) {
	clone, err := NewFastTugOfWar(st.cfg)
	if err != nil {
		return nil, err
	}
	s := &st.shards[i&int(st.mask)]
	s.mu.Lock()
	err = clone.Merge(s.tw)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return clone, nil
}

// Absorb merges a plain FastTugOfWar (e.g. a restored checkpoint
// snapshot) into shard 0. By linearity the sharded sketch then behaves
// exactly as if tw's stream had been ingested through it, which is how
// the engine resumes a relation from a checkpoint without replaying the
// pre-checkpoint stream.
func (st *ShardedFastTugOfWar) Absorb(tw *FastTugOfWar) error {
	s := &st.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tw.Merge(tw)
}

// MemoryWords reports the total storage across shards.
func (st *ShardedFastTugOfWar) MemoryWords() int {
	return len(st.shards) * st.cfg.S1 * st.cfg.S2
}

// Len returns the current multiset size across shards.
func (st *ShardedFastTugOfWar) Len() int64 {
	var n int64
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += s.tw.Len()
		s.mu.Unlock()
	}
	return n
}

var _ Tracker = (*ShardedFastTugOfWar)(nil)
