package core

import (
	"fmt"
	"math"

	"amstrack/internal/xrand"
)

// SampleCount is the improved sample-count tracker of §2.1 (Fig. 1 of the
// paper). It keeps s = s1·s2 sample slots; slot i samples a uniformly
// random position of the (canonical) insert sequence and maintains
// r_i = the number of occurrences of its value at or after its position.
// A query returns the median over s2 groups of the mean of the atomic
// estimators X_i = n·(2·r_i − 1).
//
// The implementation carries the paper's data structures:
//
//   - Pos[i]: the next stream position at which slot i replaces its sample
//     point, advanced with the reservoir "skipping" trick [Vit85] so that
//     updates cost O(1) amortized with high probability rather than Θ(s).
//   - Pm: a table position → waiting slots (the paper's look-up table of
//     defined Pm sets).
//   - Sv: for each value v occurring in the sample, a doubly-linked list of
//     the slots holding v, ordered most-recently-entered first. The order
//     is what lets a deletion find exactly the slots whose entry insert it
//     cancels.
//   - Nv: a running occurrence count per value occurring in the sample,
//     together with EntryNv[i] (Nv just before slot i entered), so that
//     r_i = Nv − EntryNv[i] is available at query time without touching
//     any r counters during inserts — the fix for the Ω(k) insert cost of
//     the straightforward implementation.
//
// Deletions reverse the most recent undeleted insert of the value (§2.1's
// canonical-sequence semantics): n and Nv are decremented and any slot
// whose EntryNv equals the decremented Nv is dropped from the sample (its
// entry insert is the one being cancelled). Dropped slots re-enter the
// sample when their already-scheduled next position arrives.
//
// Construct with NewSampleCount.
type SampleCount struct {
	cfg Config
	rng *xrand.Rand

	s        int   // number of slots = S1*S2
	n        int64 // current multiset size (inserts − deletes)
	inserts  int64 // number of insert ops processed (stream position)
	window   int64 // initial position window (paper: s·log s)
	initDone bool  // whether the first replacement has been scheduled per-slot

	pos      []int64 // future replacement position per slot
	val      []uint64
	entryN   []int64
	inSample []bool

	// Sv doubly-linked lists over slots; -1 terminates.
	next, prev []int
	head       map[uint64]int   // value → most recent slot in sample
	nv         map[uint64]int64 // value → running count while in sample
	pm         map[int64][]int  // position → slots waiting to enter there

	firstSkip []bool // slot has not yet had its first skipping application

	scratch []float64
}

// SampleCountOption customizes construction.
type SampleCountOption func(*SampleCount)

// WithWindowFromStart makes every slot an independent size-1 reservoir from
// the first insert onward, instead of the paper's initial window of
// s·log s positions. The sample is then uniform for streams of any length
// (the paper's window needs n ≥ s·log s); the price is Θ(s·log n) total
// replacement work instead of Θ(n), still O(1) amortized once n ≫ s·log n.
func WithWindowFromStart() SampleCountOption {
	return func(sc *SampleCount) { sc.window = 1 }
}

// NewSampleCount builds a sample-count tracker.
func NewSampleCount(cfg Config, opts ...SampleCountOption) (*SampleCount, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := cfg.S1 * cfg.S2
	sc := &SampleCount{
		cfg:       cfg,
		rng:       xrand.New(cfg.Seed),
		s:         s,
		window:    initialWindow(s),
		pos:       make([]int64, s),
		val:       make([]uint64, s),
		entryN:    make([]int64, s),
		inSample:  make([]bool, s),
		next:      make([]int, s),
		prev:      make([]int, s),
		head:      make(map[uint64]int, s),
		nv:        make(map[uint64]int64, s),
		pm:        make(map[int64][]int, s),
		firstSkip: make([]bool, s),
		scratch:   make([]float64, 0, cfg.S2),
	}
	for _, opt := range opts {
		opt(sc)
	}
	for i := 0; i < s; i++ {
		sc.next[i], sc.prev[i] = -1, -1
		sc.firstSkip[i] = true
		p := int64(sc.rng.Uint64n(uint64(sc.window))) + 1 // uniform in {1..window}
		sc.pos[i] = p
		sc.pm[p] = append(sc.pm[p], i)
	}
	return sc, nil
}

// initialWindow returns the paper's s·log s initial position window.
func initialWindow(s int) int64 {
	if s <= 1 {
		return 1
	}
	w := int64(s) * int64(math.Ceil(math.Log2(float64(s))))
	if w < int64(s) {
		w = int64(s)
	}
	return w
}

// Insert processes insert(v): steps 7–19 of Fig. 1.
func (sc *SampleCount) Insert(v uint64) {
	sc.inserts++
	sc.n++
	m := sc.inserts

	// Maintain the running count for values occurring in the sample
	// (steps 19 / 23). Nv counts each insert op at most once.
	if _, ok := sc.nv[v]; ok {
		sc.nv[v]++
	}

	// Slots whose selected position is m enter the sample now.
	if waiting, ok := sc.pm[m]; ok {
		delete(sc.pm, m)
		for _, i := range waiting {
			// Discard the existing sample point, if any (steps 13–15).
			if sc.inSample[i] {
				sc.unlink(i)
			}
			// Add the new sample point (step 17). If v was not in the
			// sample, Nv starts accumulating at this insert (created once
			// even if several slots enter here).
			if _, ok := sc.nv[v]; !ok {
				sc.nv[v] = 1
			}
			sc.val[i] = v
			sc.entryN[i] = sc.nv[v] - 1 // Nv just prior to entry; r starts at 1
			sc.pushHead(i, v)
			sc.inSample[i] = true

			// Schedule the next replacement by skipping (steps 11–12).
			sc.scheduleNext(i, m)
		}
	}
}

// scheduleNext draws slot i's next replacement position after firing at m.
// The first application skips from the end of the initial window (the
// paper's rule: "considers only positions greater than s log s");
// subsequent ones skip from the position that just fired. The skip law is
// size-1 reservoir sampling: the current point, taken at position q,
// survives through position M−1 and is replaced at M with
// P(M > x) = q/x, realized by M = ceil(q/u) for u uniform in (0,1].
func (sc *SampleCount) scheduleNext(i int, m int64) {
	q := m
	if sc.firstSkip[i] {
		sc.firstSkip[i] = false
		if sc.window > m {
			q = sc.window
		}
	}
	u := sc.rng.Float64Open()
	f := math.Ceil(float64(q) / u)
	// A tiny u can push q/u beyond int64; such a position is unreachable in
	// any real stream, so clamp instead of overflowing the conversion.
	const maxPos = int64(1) << 62
	next := maxPos
	if f < float64(maxPos) {
		next = int64(f)
	}
	if next <= m {
		next = m + 1
	}
	sc.pos[i] = next
	sc.pm[next] = append(sc.pm[next], i)
}

// Delete processes delete(v): steps 20–26 of Fig. 1. It reverses the most
// recent undeleted insert(v). Deleting a value that the sketch has never
// seen is not detectable in sublinear space; like the paper, we assume the
// operation sequence is valid (Validate in package stream checks that), so
// Delete only fails on an impossible internal state.
func (sc *SampleCount) Delete(v uint64) error {
	sc.n--
	count, ok := sc.nv[v]
	if !ok {
		return nil // v does not occur in the sample; only n changes
	}
	count--
	sc.nv[v] = count
	// Remove every slot whose entry insert is the one being cancelled:
	// those with EntryNv[i] == Nv (now-decremented). They sit at the head
	// of Sv because the list is most-recent-first.
	for {
		h, ok := sc.head[v]
		if !ok || sc.entryN[h] != count {
			break
		}
		sc.unlink(h)
	}
	if _, ok := sc.head[v]; !ok {
		// v no longer occurs in the sample; stop counting it (space bound).
		delete(sc.nv, v)
	}
	if count < 0 {
		return fmt.Errorf("core: sample-count underflow for value %d", v)
	}
	return nil
}

// pushHead inserts slot i at the head of Sv.
func (sc *SampleCount) pushHead(i int, v uint64) {
	if h, ok := sc.head[v]; ok {
		sc.next[i] = h
		sc.prev[h] = i
	} else {
		sc.next[i] = -1
	}
	sc.prev[i] = -1
	sc.head[v] = i
}

// unlink removes slot i from its value's list and marks it out of sample.
func (sc *SampleCount) unlink(i int) {
	v := sc.val[i]
	p, n := sc.prev[i], sc.next[i]
	if p >= 0 {
		sc.next[p] = n
	} else {
		if n >= 0 {
			sc.head[v] = n
		} else {
			delete(sc.head, v)
		}
	}
	if n >= 0 {
		sc.prev[n] = p
	}
	sc.next[i], sc.prev[i] = -1, -1
	sc.inSample[i] = false
	if _, ok := sc.head[v]; !ok {
		// Last slot holding v left the sample: drop its running count so
		// the live tables stay O(s).
		delete(sc.nv, v)
	}
}

// Estimate returns the median over groups of the mean of X_i = n(2r_i − 1),
// ignoring slots not currently in the sample (steps 27–32). Groups with no
// live slots are skipped; if no slot is live the estimate is 0 (nothing is
// known about the multiset beyond its size).
func (sc *SampleCount) Estimate() float64 {
	sc.scratch = sc.scratch[:0]
	s1 := sc.cfg.S1
	for j := 0; j < sc.cfg.S2; j++ {
		sum := 0.0
		live := 0
		for i := j * s1; i < (j+1)*s1; i++ {
			if !sc.inSample[i] {
				continue
			}
			r := sc.nv[sc.val[i]] - sc.entryN[i]
			sum += float64(sc.n) * (2*float64(r) - 1)
			live++
		}
		if live > 0 {
			sc.scratch = append(sc.scratch, sum/float64(live))
		}
	}
	if len(sc.scratch) == 0 {
		return 0
	}
	return Median(sc.scratch)
}

// MemoryWords returns s, the number of sample slots; every auxiliary table
// is Θ(s) as in the paper's accounting.
func (sc *SampleCount) MemoryWords() int { return sc.s }

// Len returns the current multiset size implied by the update stream.
func (sc *SampleCount) Len() int64 { return sc.n }

// Config returns the tracker's configuration.
func (sc *SampleCount) Config() Config { return sc.cfg }

// LiveSlots returns how many slots currently hold a sample point. The
// deletion analysis (Chernoff argument before Theorem 2.1) predicts at
// least s/2 with high probability when deletes are ≤ 1/5 of any prefix.
func (sc *SampleCount) LiveSlots() int {
	live := 0
	for _, in := range sc.inSample {
		if in {
			live++
		}
	}
	return live
}

// checkInvariants verifies internal consistency; it is exported to the
// package tests via export_test.go and is O(s).
func (sc *SampleCount) checkInvariants() error {
	// Every in-sample slot must be reachable from its value's head exactly
	// once, and nv must exist exactly for values with a list.
	seen := make(map[int]bool)
	for v, h := range sc.head {
		if _, ok := sc.nv[v]; !ok {
			return fmt.Errorf("value %d has list but no Nv", v)
		}
		prevEntry := int64(math.MaxInt64)
		for i := h; i >= 0; i = sc.next[i] {
			if seen[i] {
				return fmt.Errorf("slot %d linked twice", i)
			}
			seen[i] = true
			if !sc.inSample[i] {
				return fmt.Errorf("linked slot %d not in sample", i)
			}
			if sc.val[i] != v {
				return fmt.Errorf("slot %d in list of %d holds %d", i, v, sc.val[i])
			}
			if sc.entryN[i] > prevEntry {
				return fmt.Errorf("list of %d not most-recent-first", v)
			}
			prevEntry = sc.entryN[i]
			r := sc.nv[v] - sc.entryN[i]
			if r < 1 {
				return fmt.Errorf("slot %d has r = %d < 1", i, r)
			}
		}
	}
	for i := 0; i < sc.s; i++ {
		if sc.inSample[i] && !seen[i] {
			return fmt.Errorf("in-sample slot %d not linked", i)
		}
	}
	for v := range sc.nv {
		if _, ok := sc.head[v]; !ok {
			return fmt.Errorf("Nv exists for %d with no slots", v)
		}
	}
	// Every slot must have exactly one pending position.
	pending := make(map[int]int64)
	for p, slots := range sc.pm {
		if p <= sc.inserts {
			return fmt.Errorf("stale pending position %d (stream at %d)", p, sc.inserts)
		}
		for _, i := range slots {
			if _, dup := pending[i]; dup {
				return fmt.Errorf("slot %d scheduled twice", i)
			}
			pending[i] = p
		}
	}
	if len(pending) != sc.s {
		return fmt.Errorf("%d slots scheduled, want %d", len(pending), sc.s)
	}
	return nil
}
