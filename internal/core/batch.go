package core

// Bulk update paths. Every tracker accepts whole slices of values so
// callers replaying update logs or loading partitions do not pay per-call
// overhead, and so trackers whose state has cache-unfriendly per-update
// access patterns can reorder work across the batch. Semantics are exactly
// those of the equivalent sequence of Insert/Delete calls; DeleteBatch
// stops at the first failing delete and reports it (values before the
// failure remain applied, matching a plain loop).

// InsertBatch adds every value in vs. Duplicate-heavy batches are
// aggregated into frequencies first, so each counter pays one hash
// evaluation per DISTINCT value instead of one per occurrence — by
// linearity the result is bit-identical to inserting one at a time.
func (t *TugOfWar) InsertBatch(vs []uint64) { t.applyBatch(vs, 1) }

// DeleteBatch removes every value in vs. Always succeeds (see Delete).
func (t *TugOfWar) DeleteBatch(vs []uint64) error {
	t.applyBatch(vs, -1)
	return nil
}

func (t *TugOfWar) applyBatch(vs []uint64, dir int64) {
	if len(vs) < 32 {
		// Aggregation overhead dominates tiny batches.
		for _, v := range vs {
			for k := range t.z {
				t.z[k] += dir * t.fns[k].Sign(v)
			}
		}
		t.n += dir * int64(len(vs))
		return
	}
	freq := make(map[uint64]int64, len(vs))
	for _, v := range vs {
		freq[v]++
	}
	for v, f := range freq {
		df := dir * f
		for k := range t.z {
			t.z[k] += t.fns[k].Sign(v) * df
		}
	}
	t.n += dir * int64(len(vs))
}

// InsertBatch adds every value in vs.
func (sc *SampleCount) InsertBatch(vs []uint64) {
	for _, v := range vs {
		sc.Insert(v)
	}
}

// DeleteBatch removes every value in vs, stopping at the first error.
func (sc *SampleCount) DeleteBatch(vs []uint64) error {
	for _, v := range vs {
		if err := sc.Delete(v); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch adds every value in vs.
func (fq *SampleCountFQ) InsertBatch(vs []uint64) {
	for _, v := range vs {
		fq.Insert(v)
	}
}

// DeleteBatch removes every value in vs, stopping at the first error.
func (fq *SampleCountFQ) DeleteBatch(vs []uint64) error {
	for _, v := range vs {
		if err := fq.Delete(v); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch adds every value in vs.
func (ns *NaiveSample) InsertBatch(vs []uint64) {
	for _, v := range vs {
		ns.Insert(v)
	}
}

// DeleteBatch fails at the first value like a plain Delete loop: the naive
// baseline cannot reverse a uniform sample. An empty batch is a no-op.
func (ns *NaiveSample) DeleteBatch(vs []uint64) error {
	if len(vs) == 0 {
		return nil
	}
	return ns.Delete(vs[0])
}
