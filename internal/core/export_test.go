package core

// CheckInvariants exposes the sample-count internal consistency check to
// the package tests.
func (sc *SampleCount) CheckInvariants() error { return sc.checkInvariants() }

// Window exposes the initial position window for tests.
func (sc *SampleCount) Window() int64 { return sc.window }

// RawCounters exposes the live tug-of-war counter slice (not a copy) so the
// tests can verify SetFrequencies equivalence cheaply.
func (t *TugOfWar) RawCounters() []int64 { return t.z }

// CheckInvariants exposes the fast-query consistency check to tests.
func (fq *SampleCountFQ) CheckInvariants() error { return fq.checkInvariants() }
