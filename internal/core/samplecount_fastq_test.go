package core

import (
	"testing"
	"testing/quick"

	"amstrack/internal/xrand"
)

func newFQ(t *testing.T, s1, s2 int, seed uint64, opts ...SampleCountOption) *SampleCountFQ {
	t.Helper()
	fq, err := NewSampleCountFQ(Config{S1: s1, S2: s2, Seed: seed}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return fq
}

func TestNewSampleCountFQRejectsBadConfig(t *testing.T) {
	if _, err := NewSampleCountFQ(Config{S1: 0, S2: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

// TestFQMatchesSampleCountExactly is the differential test: with equal
// seeds the two variants select identical sample positions, so their
// estimates must be bit-identical after any valid op sequence.
func TestFQMatchesSampleCountExactly(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		sc, err := NewSampleCount(Config{S1: 4, S2: 3, Seed: seed}, WithWindowFromStart())
		if err != nil {
			return false
		}
		fq, err := NewSampleCountFQ(Config{S1: 4, S2: 3, Seed: seed}, WithWindowFromStart())
		if err != nil {
			return false
		}
		r := xrand.New(seed ^ 0x1234)
		live := map[uint64]int{}
		for _, x := range raw {
			v := uint64(x % 24)
			if live[v] > 0 && r.Float64() < 0.3 {
				if sc.Delete(v) != nil || fq.Delete(v) != nil {
					return false
				}
				live[v]--
			} else {
				sc.Insert(v)
				fq.Insert(v)
				live[v]++
			}
		}
		return sc.Estimate() == fq.Estimate() && sc.Len() == fq.Len() && sc.LiveSlots() == fq.LiveSlots()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFQMatchesSampleCountLongStream(t *testing.T) {
	cfg := Config{S1: 16, S2: 4, Seed: 77}
	sc, _ := NewSampleCount(cfg, WithWindowFromStart())
	fq, _ := NewSampleCountFQ(cfg, WithWindowFromStart())
	r := xrand.New(3)
	live := []uint64{}
	for i := 0; i < 60000; i++ {
		if len(live) > 10 && r.Float64() < 0.15 {
			k := r.Intn(len(live))
			v := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := sc.Delete(v); err != nil {
				t.Fatal(err)
			}
			if err := fq.Delete(v); err != nil {
				t.Fatal(err)
			}
		} else {
			v := r.Uint64n(128)
			sc.Insert(v)
			fq.Insert(v)
			live = append(live, v)
		}
		if i%9973 == 0 {
			if sc.Estimate() != fq.Estimate() {
				t.Fatalf("estimates diverged at op %d: %v vs %v", i, sc.Estimate(), fq.Estimate())
			}
			if err := fq.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if sc.Estimate() != fq.Estimate() {
		t.Fatalf("final estimates differ: %v vs %v", sc.Estimate(), fq.Estimate())
	}
}

func TestFQInvariantsUnderChurn(t *testing.T) {
	fq := newFQ(t, 8, 4, 11, WithWindowFromStart())
	r := xrand.New(13)
	live := []uint64{}
	for i := 0; i < 30000; i++ {
		if len(live) > 5 && r.Float64() < 0.2 {
			k := r.Intn(len(live))
			v := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := fq.Delete(v); err != nil {
				t.Fatal(err)
			}
		} else {
			v := r.Uint64n(32)
			fq.Insert(v)
			live = append(live, v)
		}
		if i%2503 == 0 {
			if err := fq.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := fq.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFQEmptyEstimate(t *testing.T) {
	fq := newFQ(t, 4, 2, 1)
	if fq.Estimate() != 0 {
		t.Fatalf("empty estimate = %v", fq.Estimate())
	}
	if fq.MemoryWords() != 8 || fq.Config().S1 != 4 {
		t.Fatal("config accessors wrong")
	}
}

func TestFQInsertDeleteAllEmpties(t *testing.T) {
	fq := newFQ(t, 4, 2, 9, WithWindowFromStart())
	vals := []uint64{1, 2, 1, 3, 1, 2}
	for _, v := range vals {
		fq.Insert(v)
	}
	for k := len(vals) - 1; k >= 0; k-- {
		if err := fq.Delete(vals[k]); err != nil {
			t.Fatal(err)
		}
	}
	if fq.Len() != 0 || fq.LiveSlots() != 0 || fq.Estimate() != 0 {
		t.Fatalf("not empty: len=%d live=%d est=%v", fq.Len(), fq.LiveSlots(), fq.Estimate())
	}
	if err := fq.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSampleCountFQInsert(b *testing.B) {
	fq, _ := NewSampleCountFQ(Config{S1: 128, S2: 8, Seed: 1}, WithWindowFromStart())
	r := xrand.New(2)
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = r.Uint64n(1 << 14)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fq.Insert(vals[i&(1<<16-1)])
	}
}

func BenchmarkSampleCountFQEstimate(b *testing.B) {
	fq, _ := NewSampleCountFQ(Config{S1: 128, S2: 8, Seed: 1}, WithWindowFromStart())
	r := xrand.New(2)
	for i := 0; i < 100000; i++ {
		fq.Insert(r.Uint64n(1 << 12))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += fq.Estimate()
	}
	_ = sink
}
