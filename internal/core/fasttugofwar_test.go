package core

import (
	"math"
	"sync"
	"testing"

	"amstrack/internal/dist"
	"amstrack/internal/xrand"
)

// fastExactSJ computes Σ f² of a stream for ground truth.
func fastExactSJ(vals []uint64) float64 {
	freq := map[uint64]int64{}
	for _, v := range vals {
		freq[v]++
	}
	var s float64
	for _, f := range freq {
		s += float64(f) * float64(f)
	}
	return s
}

func TestFastTugOfWarValidation(t *testing.T) {
	if _, err := NewFastTugOfWar(Config{S1: 0, S2: 1}); err == nil {
		t.Error("S1=0 accepted")
	}
	if _, err := NewFastTugOfWar(Config{S1: 1, S2: 0}); err == nil {
		t.Error("S2=0 accepted")
	}
}

// TestFastTugOfWarUnbiased checks E[X_j] = SJ: with a single row (no
// median) the mean estimate over many independent seeds must converge to
// the exact self-join size.
func TestFastTugOfWarUnbiased(t *testing.T) {
	r := xrand.New(3)
	vals := make([]uint64, 4000)
	for i := range vals {
		vals[i] = r.Uint64n(100)
	}
	sj := fastExactSJ(vals)

	const trials = 400
	sum := 0.0
	for trial := uint64(0); trial < trials; trial++ {
		ft, err := NewFastTugOfWar(Config{S1: 16, S2: 1, Seed: trial})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			ft.Insert(v)
		}
		sum += ft.Estimate()
	}
	mean := sum / trials
	// Var(X) ≤ 2·SJ²/S1, so the mean of 400 trials has σ ≤ SJ·√(2/16/400)
	// ≈ 0.018·SJ; 4σ ≈ 7%.
	if math.Abs(mean-sj)/sj > 0.07 {
		t.Fatalf("mean estimate %.0f vs SJ %.0f (relerr %.3f): estimator biased",
			mean, sj, math.Abs(mean-sj)/sj)
	}
}

// TestFastTugOfWarTheorem22Bounds checks the Theorem 2.2-style guarantee on
// Zipf and uniform streams: relative error ≤ 4/√S1 with probability
// ≥ 1 − 2^(−S2/2). With S1=256, S2=8 the bound is 25% with ≥ 94%
// confidence; we run 40 seeds per stream and allow 2 misses each.
func TestFastTugOfWarTheorem22Bounds(t *testing.T) {
	streams := map[string][]uint64{}
	zipf, err := dist.NewZipf(1.0, 5000, 17)
	if err != nil {
		t.Fatal(err)
	}
	streams["zipf"] = dist.Take(zipf, 50000)
	unif, err := dist.NewUniform(4096, 19)
	if err != nil {
		t.Fatal(err)
	}
	streams["uniform"] = dist.Take(unif, 50000)

	for name, vals := range streams {
		sj := fastExactSJ(vals)
		freq := map[uint64]int64{}
		for _, v := range vals {
			freq[v]++
		}
		const trials = 40
		misses := 0
		for trial := uint64(0); trial < trials; trial++ {
			ft, err := NewFastTugOfWar(Config{S1: 256, S2: 8, Seed: 1000 + trial})
			if err != nil {
				t.Fatal(err)
			}
			ft.SetFrequencies(freq)
			if math.Abs(ft.Estimate()-sj)/sj > 4/math.Sqrt(256) {
				misses++
			}
		}
		if misses > 2 {
			t.Errorf("%s: %d/%d trials outside the 4/√S1 bound (expected ≤ 2)", name, misses, trials)
		}
	}
}

// TestFastTugOfWarDeleteRoundTrip: deleting everything that was inserted
// must return the sketch exactly to zero (linearity), and a partial delete
// must equal a direct build of the surviving multiset.
func TestFastTugOfWarDeleteRoundTrip(t *testing.T) {
	cfg := Config{S1: 64, S2: 4, Seed: 11}
	ft, err := NewFastTugOfWar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(7)
	vals := make([]uint64, 5000)
	for i := range vals {
		vals[i] = r.Uint64n(300)
	}
	for _, v := range vals {
		ft.Insert(v)
	}

	// Delete the second half; compare against a fresh sketch of the first.
	for _, v := range vals[2500:] {
		if err := ft.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
	direct, _ := NewFastTugOfWar(cfg)
	for _, v := range vals[:2500] {
		direct.Insert(v)
	}
	a, b := ft.Counters(), direct.Counters()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("counter %d after partial delete: %d vs direct %d", k, a[k], b[k])
		}
	}

	// Delete the rest: everything must be exactly zero.
	if err := ft.DeleteBatch(vals[:2500]); err != nil {
		t.Fatal(err)
	}
	for k, z := range ft.Counters() {
		if z != 0 {
			t.Fatalf("counter %d nonzero after full delete: %d", k, z)
		}
	}
	if ft.Estimate() != 0 || ft.Len() != 0 {
		t.Fatalf("estimate %v, len %d after full delete", ft.Estimate(), ft.Len())
	}
}

// TestFastTugOfWarBatchMatchesLoop: batch paths must be bit-identical to
// one-at-a-time updates.
func TestFastTugOfWarBatchMatchesLoop(t *testing.T) {
	cfg := Config{S1: 32, S2: 4, Seed: 5}
	batch, _ := NewFastTugOfWar(cfg)
	loop, _ := NewFastTugOfWar(cfg)
	r := xrand.New(2)
	vals := make([]uint64, 3000)
	for i := range vals {
		vals[i] = r.Uint64n(64)
	}
	batch.InsertBatch(vals)
	for _, v := range vals {
		loop.Insert(v)
	}
	a, b := batch.Counters(), loop.Counters()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("counter %d: batch %d vs loop %d", k, a[k], b[k])
		}
	}
	if batch.Len() != loop.Len() {
		t.Fatalf("len: batch %d vs loop %d", batch.Len(), loop.Len())
	}
}

// TestTugOfWarBatchMatchesLoop: the flat sketch's aggregated batch path
// must also be bit-identical to a plain loop (both the small-batch and the
// aggregated large-batch branch).
func TestTugOfWarBatchMatchesLoop(t *testing.T) {
	for _, n := range []int{8, 3000} { // below and above the aggregation cutoff
		cfg := Config{S1: 16, S2: 4, Seed: 9}
		batch, _ := NewTugOfWar(cfg)
		loop, _ := NewTugOfWar(cfg)
		r := xrand.New(4)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = r.Uint64n(50)
		}
		batch.InsertBatch(vals)
		for _, v := range vals {
			loop.Insert(v)
		}
		a, b := batch.Counters(), loop.Counters()
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("n=%d counter %d: batch %d vs loop %d", n, k, a[k], b[k])
			}
		}
		if err := batch.DeleteBatch(vals); err != nil {
			t.Fatal(err)
		}
		for k, z := range batch.Counters() {
			if z != 0 {
				t.Fatalf("n=%d counter %d nonzero after DeleteBatch: %d", n, k, z)
			}
		}
	}
}

// TestFastTugOfWarSetFrequenciesMatchesStreaming: offline loading is
// bit-identical to streaming (linearity).
func TestFastTugOfWarSetFrequenciesMatchesStreaming(t *testing.T) {
	cfg := Config{S1: 64, S2: 4, Seed: 21}
	stream, _ := NewFastTugOfWar(cfg)
	offline, _ := NewFastTugOfWar(cfg)
	r := xrand.New(13)
	freq := map[uint64]int64{}
	for i := 0; i < 4000; i++ {
		v := r.Uint64n(200)
		stream.Insert(v)
		freq[v]++
	}
	offline.SetFrequencies(freq)
	a, b := stream.Counters(), offline.Counters()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("counter %d: streaming %d vs SetFrequencies %d", k, a[k], b[k])
		}
	}
	if stream.Len() != offline.Len() {
		t.Fatalf("len: %d vs %d", stream.Len(), offline.Len())
	}
}

func TestFastTugOfWarMerge(t *testing.T) {
	cfg := Config{S1: 32, S2: 4, Seed: 13}
	a, _ := NewFastTugOfWar(cfg)
	b, _ := NewFastTugOfWar(cfg)
	whole, _ := NewFastTugOfWar(cfg)
	r := xrand.New(9)
	for i := 0; i < 10000; i++ {
		v := r.Uint64n(200)
		whole.Insert(v)
		if i%2 == 0 {
			a.Insert(v)
		} else {
			b.Insert(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatal("merged estimate differs from whole-stream estimate")
	}
	other, _ := NewFastTugOfWar(Config{S1: 32, S2: 4, Seed: 14})
	if err := a.Merge(other); err == nil {
		t.Fatal("merge across configs accepted")
	}
}

func TestFastTugOfWarSerializationRoundTrip(t *testing.T) {
	ft, _ := NewFastTugOfWar(Config{S1: 8, S2: 3, Seed: 77})
	r := xrand.New(6)
	for i := 0; i < 2000; i++ {
		ft.Insert(r.Uint64n(100))
	}
	blob, err := ft.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back FastTugOfWar
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != ft.Estimate() || back.Len() != ft.Len() {
		t.Fatal("round trip changed the sketch")
	}
	// The restored sketch must keep tracking (hash family re-derived).
	back.Insert(1)
	ft.Insert(1)
	if back.Estimate() != ft.Estimate() {
		t.Fatal("restored sketch diverged on further updates")
	}

	// Truncations and bit flips must be rejected, as for TugOfWar.
	for cut := 0; cut < len(blob); cut++ {
		var tr FastTugOfWar
		if err := tr.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	mut := append([]byte(nil), blob...)
	mut[10] ^= 1
	var tr FastTugOfWar
	if err := tr.UnmarshalBinary(mut); err == nil {
		t.Fatal("bit flip accepted")
	}

	// A flat tug-of-war blob must be rejected by magic.
	tw, _ := NewTugOfWar(Config{S1: 8, S2: 3, Seed: 77})
	twBlob, _ := tw.MarshalBinary()
	if err := tr.UnmarshalBinary(twBlob); err == nil {
		t.Fatal("flat tug-of-war blob accepted as fast blob")
	}
}

// TestShardedFastTugOfWar checks that concurrent sharded ingest reproduces
// the single-stream sketch exactly (linearity), including batch updates.
func TestShardedFastTugOfWar(t *testing.T) {
	cfg := Config{S1: 64, S2: 4, Seed: 31}
	st, err := NewShardedFastTugOfWar(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 4 {
		t.Fatalf("shards = %d", st.Shards())
	}
	r := xrand.New(8)
	vals := make([]uint64, 40000)
	for i := range vals {
		vals[i] = r.Uint64n(500)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(chunk []uint64) {
			defer wg.Done()
			// Mix batch and single-value paths.
			st.InsertBatch(chunk[:len(chunk)/2])
			for _, v := range chunk[len(chunk)/2:] {
				st.Insert(v)
			}
		}(vals[w*10000 : (w+1)*10000])
	}
	wg.Wait()

	single, _ := NewFastTugOfWar(cfg)
	single.InsertBatch(vals)
	if st.Estimate() != single.Estimate() {
		t.Fatalf("sharded estimate %v != single-stream %v", st.Estimate(), single.Estimate())
	}
	if st.Len() != int64(len(vals)) {
		t.Fatalf("len = %d", st.Len())
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Estimate() != single.Estimate() {
		t.Fatal("snapshot differs from single-stream sketch")
	}
	if err := st.DeleteBatch(vals); err != nil {
		t.Fatal(err)
	}
	if st.Estimate() != 0 {
		t.Fatal("estimate nonzero after deleting everything")
	}

	if _, err := NewShardedFastTugOfWar(cfg, -1); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestFastTugOfWarMemoryWords pins the storage accounting.
func TestFastTugOfWarMemoryWords(t *testing.T) {
	ft, _ := NewFastTugOfWar(Config{S1: 128, S2: 8, Seed: 1})
	if ft.MemoryWords() != 1024 {
		t.Fatalf("MemoryWords = %d, want 1024", ft.MemoryWords())
	}
}
