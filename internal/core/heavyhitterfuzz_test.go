package core

import (
	"bytes"
	"testing"
)

// FuzzSpaceSaving hammers the heavy-hitter blob decoder — the section
// skimmed checkpoints and relation bundles embed — with arbitrary
// bytes. Two properties: corrupt or truncated input never panics, and
// any ACCEPTED input re-marshals to exactly the bytes that were
// decoded (the canonical-encoding property the engine's byte-identity
// guarantees lean on).
func FuzzSpaceSaving(f *testing.F) {
	seedTables := func() [][]byte {
		var out [][]byte
		a, _ := NewSpaceSaving(1, 0)
		out = append(out, mustMarshalSS(a))
		b, _ := NewSpaceSaving(8, 42)
		for i := uint64(0); i < 40; i++ {
			b.Insert(i % 11)
		}
		b.Delete(3)
		out = append(out, mustMarshalSS(b))
		return out
	}
	for _, s := range seedTables() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s SpaceSaving
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted blob failed to re-marshal: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted blob is not canonical: %d in, %d out", len(data), len(re))
		}
	})
}

func mustMarshalSS(s *SpaceSaving) []byte {
	b, err := s.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}
