package core

import (
	"bytes"
	"testing"

	"amstrack/internal/xrand"
)

// Merge-exactness property: the sketches are LINEAR in the frequency
// vector, so an insert/delete stream randomly partitioned across 2–5
// synopses merges into a synopsis BIT-IDENTICAL — estimates and
// serialized bytes, not approximately equal — to single-synopsis ingest.
// This is the invariant the whole multi-node exchange path (engine
// bundles, amsd /v1/signatures, joinctl) rests on.

// mergeOps builds a reproducible insert/delete stream: mostly inserts
// over a smallish domain, with deletions of previously inserted values
// (valid for the whole stream, though linearity does not even need
// per-partition validity).
func mergeOps(r *xrand.Rand, n int) (values []uint64, deletes []bool) {
	var live []uint64
	values = make([]uint64, n)
	deletes = make([]bool, n)
	for i := 0; i < n; i++ {
		if len(live) > 0 && r.Intn(4) == 0 {
			j := r.Intn(len(live))
			values[i], deletes[i] = live[j], true
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		v := r.Uint64n(300)
		values[i] = v
		live = append(live, v)
	}
	return values, deletes
}

// sketch is the common surface of TugOfWar and FastTugOfWar the property
// needs; both satisfy it as-is.
type sketch interface {
	Insert(v uint64)
	Delete(v uint64) error
	Estimate() float64
	MarshalBinary() ([]byte, error)
}

func runMergeProperty(t *testing.T, trial int, mk func() sketch, merge func(dst, src sketch) error) {
	t.Helper()
	r := xrand.New(uint64(1000 + trial))
	values, dels := mergeOps(r, 4000)
	parts := 2 + r.Intn(4)

	single := mk()
	partSk := make([]sketch, parts)
	for i := range partSk {
		partSk[i] = mk()
	}
	for i, v := range values {
		target := partSk[r.Intn(parts)]
		if dels[i] {
			if err := single.Delete(v); err != nil {
				t.Fatal(err)
			}
			if err := target.Delete(v); err != nil {
				t.Fatal(err)
			}
		} else {
			single.Insert(v)
			target.Insert(v)
		}
	}
	merged := mk()
	for _, p := range partSk {
		if err := merge(merged, p); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := merged.Estimate(), single.Estimate(); got != want {
		t.Fatalf("trial %d (%d parts): merged estimate %v != single %v", trial, parts, got, want)
	}
	mb, err := merged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := single.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb, sb) {
		t.Fatalf("trial %d (%d parts): merged bytes differ from single-ingest bytes", trial, parts)
	}
}

func TestMergeExactnessTugOfWar(t *testing.T) {
	cfg := Config{S1: 64, S2: 4, Seed: 21}
	for trial := 0; trial < 8; trial++ {
		runMergeProperty(t, trial,
			func() sketch {
				s, err := NewTugOfWar(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			func(dst, src sketch) error { return dst.(*TugOfWar).Merge(src.(*TugOfWar)) })
	}
}

func TestMergeExactnessFastTugOfWar(t *testing.T) {
	cfg := Config{S1: 128, S2: 4, Seed: 22}
	for trial := 0; trial < 8; trial++ {
		runMergeProperty(t, trial,
			func() sketch {
				s, err := NewFastTugOfWar(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			func(dst, src sketch) error { return dst.(*FastTugOfWar).Merge(src.(*FastTugOfWar)) })
	}
}

// TestMergeIncompatibleSketches: a shape or seed mismatch must error,
// never silently combine foreign hash families.
func TestMergeIncompatibleSketches(t *testing.T) {
	base := Config{S1: 64, S2: 4, Seed: 5}
	for _, other := range []Config{
		{S1: 32, S2: 4, Seed: 5},
		{S1: 64, S2: 2, Seed: 5},
		{S1: 64, S2: 4, Seed: 6},
	} {
		a, _ := NewTugOfWar(base)
		b, _ := NewTugOfWar(other)
		if err := a.Merge(b); err == nil {
			t.Fatalf("TugOfWar accepted merge of %+v into %+v", other, base)
		}
		fa, _ := NewFastTugOfWar(base)
		fb, _ := NewFastTugOfWar(other)
		if err := fa.Merge(fb); err == nil {
			t.Fatalf("FastTugOfWar accepted merge of %+v into %+v", other, base)
		}
	}
}
