package core

import (
	"fmt"
	"runtime"
	"sync"
)

// ShardedTugOfWar ingests updates concurrently from many goroutines. It
// exploits the tug-of-war sketch's linearity: each shard is an independent
// TugOfWar over the SAME hash family (same Config), so the sum of shard
// counters equals the counters of the whole stream regardless of how
// updates were distributed across shards. Queries merge on the fly.
//
// This is the natural parallel-load construction for the paper's warehouse
// scenario (§5): loader threads each own a shard, no cross-thread
// contention on the hot path, and the synopsis stays exactly the
// single-stream sketch.
type ShardedTugOfWar struct {
	cfg    Config
	shards []shard
	mask   uint64
}

type shard struct {
	mu sync.Mutex
	tw *TugOfWar
	_  [40]byte // pad to reduce false sharing between shard locks
}

// NewShardedTugOfWar builds a sketch with the given number of shards
// (rounded up to a power of two; 0 means GOMAXPROCS).
func NewShardedTugOfWar(cfg Config, shards int) (*ShardedTugOfWar, error) {
	if shards < 0 {
		return nil, fmt.Errorf("core: negative shard count %d", shards)
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &ShardedTugOfWar{cfg: cfg, shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range st.shards {
		tw, err := NewTugOfWar(cfg)
		if err != nil {
			return nil, err
		}
		st.shards[i].tw = tw
	}
	return st, nil
}

// Shards returns the shard count.
func (st *ShardedTugOfWar) Shards() int { return len(st.shards) }

// shardIndex spreads values across mask+1 (a power of two) shards; ANY
// assignment is correct for the linear sketches, so a cheap mix of the
// value is used purely to balance load. Shared by both sharded trackers'
// single-value and batch paths so the assignment can never diverge.
func shardIndex(v, mask uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	return v & mask
}

// groupByShard partitions vs into per-shard slices under shardIndex.
func groupByShard(vs []uint64, shards int, mask uint64) [][]uint64 {
	groups := make([][]uint64, shards)
	for _, v := range vs {
		i := shardIndex(v, mask)
		groups[i] = append(groups[i], v)
	}
	return groups
}

func (st *ShardedTugOfWar) shardFor(v uint64) *shard {
	return &st.shards[shardIndex(v, st.mask)]
}

// Insert adds one occurrence of v; safe for concurrent use.
func (st *ShardedTugOfWar) Insert(v uint64) {
	s := st.shardFor(v)
	s.mu.Lock()
	s.tw.Insert(v)
	s.mu.Unlock()
}

// Delete removes one occurrence of v; safe for concurrent use.
func (st *ShardedTugOfWar) Delete(v uint64) error {
	s := st.shardFor(v)
	s.mu.Lock()
	err := s.tw.Delete(v)
	s.mu.Unlock()
	return err
}

// InsertBatch partitions vs by shard, then applies each group under a
// single lock acquisition so concurrent loaders contend once per batch per
// shard. Safe for concurrent use.
func (st *ShardedTugOfWar) InsertBatch(vs []uint64) {
	st.applyBatch(vs, false)
}

// DeleteBatch removes every value in vs; safe for concurrent use.
// Tug-of-war deletes always succeed.
func (st *ShardedTugOfWar) DeleteBatch(vs []uint64) error {
	st.applyBatch(vs, true)
	return nil
}

func (st *ShardedTugOfWar) applyBatch(vs []uint64, del bool) {
	for i, g := range groupByShard(vs, len(st.shards), st.mask) {
		if len(g) == 0 {
			continue
		}
		s := &st.shards[i]
		s.mu.Lock()
		if del {
			_ = s.tw.DeleteBatch(g)
		} else {
			s.tw.InsertBatch(g)
		}
		s.mu.Unlock()
	}
}

// Estimate merges the shards and answers the query. Safe for concurrent
// use with updates; the estimate reflects some linearization of the
// concurrent operations.
func (st *ShardedTugOfWar) Estimate() float64 {
	merged, err := st.Snapshot()
	if err != nil {
		// Cannot happen: shards share one Config by construction.
		panic(err)
	}
	return merged.Estimate()
}

// Snapshot returns a plain TugOfWar equal to the merge of all shards —
// e.g. to serialize the sketch or to hand it to a query thread.
func (st *ShardedTugOfWar) Snapshot() (*TugOfWar, error) {
	merged, err := NewTugOfWar(st.cfg)
	if err != nil {
		return nil, err
	}
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		err = merged.Merge(s.tw)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// MemoryWords reports the total storage across shards.
func (st *ShardedTugOfWar) MemoryWords() int {
	return len(st.shards) * st.cfg.S1 * st.cfg.S2
}

// Len returns the current multiset size across shards.
func (st *ShardedTugOfWar) Len() int64 {
	var n int64
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += s.tw.Len()
		s.mu.Unlock()
	}
	return n
}

var _ Tracker = (*ShardedTugOfWar)(nil)
