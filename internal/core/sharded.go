package core

import (
	"fmt"
	"runtime"
	"sync"
)

// ShardedTugOfWar ingests updates concurrently from many goroutines. It
// exploits the tug-of-war sketch's linearity: each shard is an independent
// TugOfWar over the SAME hash family (same Config), so the sum of shard
// counters equals the counters of the whole stream regardless of how
// updates were distributed across shards. Queries merge on the fly.
//
// This is the natural parallel-load construction for the paper's warehouse
// scenario (§5): loader threads each own a shard, no cross-thread
// contention on the hot path, and the synopsis stays exactly the
// single-stream sketch.
type ShardedTugOfWar struct {
	cfg    Config
	shards []shard
	mask   uint64
}

type shard struct {
	mu sync.Mutex
	tw *TugOfWar
	_  [40]byte // pad to reduce false sharing between shard locks
}

// NewShardedTugOfWar builds a sketch with the given number of shards
// (rounded up to a power of two; 0 means GOMAXPROCS).
func NewShardedTugOfWar(cfg Config, shards int) (*ShardedTugOfWar, error) {
	if shards < 0 {
		return nil, fmt.Errorf("core: negative shard count %d", shards)
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &ShardedTugOfWar{cfg: cfg, shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range st.shards {
		tw, err := NewTugOfWar(cfg)
		if err != nil {
			return nil, err
		}
		st.shards[i].tw = tw
	}
	return st, nil
}

// Shards returns the shard count.
func (st *ShardedTugOfWar) Shards() int { return len(st.shards) }

// shardFor spreads values across shards; ANY assignment is correct
// (linearity), so a cheap mix of the value is used to balance load.
func (st *ShardedTugOfWar) shardFor(v uint64) *shard {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	return &st.shards[v&st.mask]
}

// Insert adds one occurrence of v; safe for concurrent use.
func (st *ShardedTugOfWar) Insert(v uint64) {
	s := st.shardFor(v)
	s.mu.Lock()
	s.tw.Insert(v)
	s.mu.Unlock()
}

// Delete removes one occurrence of v; safe for concurrent use.
func (st *ShardedTugOfWar) Delete(v uint64) error {
	s := st.shardFor(v)
	s.mu.Lock()
	err := s.tw.Delete(v)
	s.mu.Unlock()
	return err
}

// Estimate merges the shards and answers the query. Safe for concurrent
// use with updates; the estimate reflects some linearization of the
// concurrent operations.
func (st *ShardedTugOfWar) Estimate() float64 {
	merged, err := st.Snapshot()
	if err != nil {
		// Cannot happen: shards share one Config by construction.
		panic(err)
	}
	return merged.Estimate()
}

// Snapshot returns a plain TugOfWar equal to the merge of all shards —
// e.g. to serialize the sketch or to hand it to a query thread.
func (st *ShardedTugOfWar) Snapshot() (*TugOfWar, error) {
	merged, err := NewTugOfWar(st.cfg)
	if err != nil {
		return nil, err
	}
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		err = merged.Merge(s.tw)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// MemoryWords reports the total storage across shards.
func (st *ShardedTugOfWar) MemoryWords() int {
	return len(st.shards) * st.cfg.S1 * st.cfg.S2
}

// Len returns the current multiset size across shards.
func (st *ShardedTugOfWar) Len() int64 {
	var n int64
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += s.tw.Len()
		s.mu.Unlock()
	}
	return n
}

var _ Tracker = (*ShardedTugOfWar)(nil)
