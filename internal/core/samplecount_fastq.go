package core

import (
	"fmt"
	"math"

	"amstrack/internal/xrand"
)

// SampleCountFQ is the alternative sample-count implementation sketched at
// the end of §2.1: it maintains each group sum Y_j during updates so that
// queries run in O(s2) time, at the cost of O(s2) amortized update time
// (instead of O(1) updates / O(s) queries for SampleCount).
//
// Additional state beyond SampleCount's:
//
//   - y[j]   = Σ r_i over live slots i in group j (the running group sums);
//   - num[j] = number of live slots in group j;
//   - kv     : per value v occurring in the sample, the per-group counts of
//     live slots holding v, stored as a short (group, count) list — the
//     paper's "list at most s2 long" — so total auxiliary state stays O(s).
//
// Every insert(v) advances the r of each live slot holding v by adding the
// group counts to the group sums; deletes and reservoir replacements
// reverse exactly the contributions of the slots they remove. A query
// computes n·(2·median_j(y_j/num_j) − 1); since x ↦ n(2x−1) is monotone for
// n ≥ 0, this equals SampleCount's median of group means, and the test
// suite asserts bit-equality of the two implementations on random op
// sequences.
type SampleCountFQ struct {
	cfg Config
	rng *xrand.Rand

	s       int
	n       int64
	inserts int64
	window  int64

	pos      []int64
	val      []uint64
	entryN   []int64
	inSample []bool

	next, prev []int
	head       map[uint64]int
	nv         map[uint64]int64
	pm         map[int64][]int
	firstSkip  []bool

	// Fast-query state.
	y   []int64 // group sums of r (integers: sums of occurrence counts)
	num []int   // live slots per group
	kv  map[uint64][]groupCount

	scratch []float64
}

// groupCount is one entry of a value's per-group slot-count list.
type groupCount struct {
	group int
	count int32
}

// NewSampleCountFQ builds the fast-query variant. The options of
// NewSampleCount apply (window handling is identical).
func NewSampleCountFQ(cfg Config, opts ...SampleCountOption) (*SampleCountFQ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Reuse SampleCount construction for the shared state so the two
	// variants stay in lockstep (same RNG consumption, same tables).
	base, err := NewSampleCount(cfg, opts...)
	if err != nil {
		return nil, err
	}
	fq := &SampleCountFQ{
		cfg:       base.cfg,
		rng:       base.rng,
		s:         base.s,
		window:    base.window,
		pos:       base.pos,
		val:       base.val,
		entryN:    base.entryN,
		inSample:  base.inSample,
		next:      base.next,
		prev:      base.prev,
		head:      base.head,
		nv:        base.nv,
		pm:        base.pm,
		firstSkip: base.firstSkip,
		y:         make([]int64, cfg.S2),
		num:       make([]int, cfg.S2),
		kv:        make(map[uint64][]groupCount, base.s),
		scratch:   make([]float64, 0, cfg.S2),
	}
	return fq, nil
}

// group returns slot i's group index.
func (fq *SampleCountFQ) group(i int) int { return i / fq.cfg.S1 }

// kvAdd adjusts value v's count in group g by delta, keeping the list
// compact.
func (fq *SampleCountFQ) kvAdd(v uint64, g int, delta int32) {
	list := fq.kv[v]
	for idx := range list {
		if list[idx].group == g {
			list[idx].count += delta
			if list[idx].count == 0 {
				list[idx] = list[len(list)-1]
				list = list[:len(list)-1]
				if len(list) == 0 {
					delete(fq.kv, v)
					return
				}
			}
			fq.kv[v] = list
			return
		}
	}
	if delta != 0 {
		fq.kv[v] = append(list, groupCount{group: g, count: delta})
	}
}

// Insert processes insert(v) with online Y maintenance.
func (fq *SampleCountFQ) Insert(v uint64) {
	fq.inserts++
	fq.n++
	m := fq.inserts

	// Advance r for every slot already holding v: add the group counts to
	// the group sums. This must happen BEFORE processing slot entries so
	// that a reservoir discard of a slot holding v sees group sums
	// consistent with the incremented Nv.
	if _, ok := fq.nv[v]; ok {
		fq.nv[v]++
		for _, gc := range fq.kv[v] {
			fq.y[gc.group] += int64(gc.count)
		}
	}

	// Slot entries at position m, mirroring SampleCount.Insert.
	if waiting, ok := fq.pm[m]; ok {
		delete(fq.pm, m)
		for _, i := range waiting {
			if fq.inSample[i] {
				// Reservoir discard: remove the slot's full contribution.
				g := fq.group(i)
				fq.y[g] -= fq.nv[fq.val[i]] - fq.entryN[i]
				fq.num[g]--
				fq.kvAdd(fq.val[i], g, -1)
				fq.unlink(i)
			}
			if _, ok := fq.nv[v]; !ok {
				fq.nv[v] = 1
			}
			fq.val[i] = v
			fq.entryN[i] = fq.nv[v] - 1
			fq.pushHead(i, v)
			fq.inSample[i] = true
			g := fq.group(i)
			fq.num[g]++
			fq.kvAdd(v, g, 1)
			// The entering slot starts with r = 1 (this very insert); the
			// advance above ran before it joined kv, so credit it here.
			fq.y[g]++
			fq.scheduleNext(i, m)
		}
	}
}

// Delete processes delete(v), reversing the most recent undeleted
// insert(v) in the Y sums as well.
func (fq *SampleCountFQ) Delete(v uint64) error {
	fq.n--
	count, ok := fq.nv[v]
	if !ok {
		return nil
	}
	count--
	fq.nv[v] = count
	// Remove slots whose entry insert is cancelled; each such slot has
	// r = 1 right now (its EntryNv equals the decremented Nv).
	for {
		h, ok := fq.head[v]
		if !ok || fq.entryN[h] != count {
			break
		}
		g := fq.group(h)
		fq.y[g]--
		fq.num[g]--
		fq.kvAdd(v, g, -1)
		fq.unlink(h)
	}
	// Remaining slots holding v lose the cancelled occurrence from r.
	for _, gc := range fq.kv[v] {
		fq.y[gc.group] -= int64(gc.count)
	}
	if _, ok := fq.head[v]; !ok {
		delete(fq.nv, v)
	}
	if count < 0 {
		return fmt.Errorf("core: sample-count-fq underflow for value %d", v)
	}
	return nil
}

// pushHead / unlink mirror SampleCount's list maintenance.
func (fq *SampleCountFQ) pushHead(i int, v uint64) {
	if h, ok := fq.head[v]; ok {
		fq.next[i] = h
		fq.prev[h] = i
	} else {
		fq.next[i] = -1
	}
	fq.prev[i] = -1
	fq.head[v] = i
}

func (fq *SampleCountFQ) unlink(i int) {
	v := fq.val[i]
	p, n := fq.prev[i], fq.next[i]
	if p >= 0 {
		fq.next[p] = n
	} else {
		if n >= 0 {
			fq.head[v] = n
		} else {
			delete(fq.head, v)
		}
	}
	if n >= 0 {
		fq.prev[n] = p
	}
	fq.next[i], fq.prev[i] = -1, -1
	fq.inSample[i] = false
	if _, ok := fq.head[v]; !ok {
		delete(fq.nv, v)
	}
}

// scheduleNext mirrors SampleCount.scheduleNext (same RNG law, so the two
// variants with equal seeds select identical positions).
func (fq *SampleCountFQ) scheduleNext(i int, m int64) {
	q := m
	if fq.firstSkip[i] {
		fq.firstSkip[i] = false
		if fq.window > m {
			q = fq.window
		}
	}
	u := fq.rng.Float64Open()
	f := math.Ceil(float64(q) / u)
	const maxPos = int64(1) << 62
	next := maxPos
	if f < float64(maxPos) {
		next = int64(f)
	}
	if next <= m {
		next = m + 1
	}
	fq.pos[i] = next
	fq.pm[next] = append(fq.pm[next], i)
}

// Estimate answers the query in O(s2): the median over non-empty groups of
// n·(2·y_j − num_j)/num_j. The per-group expression equals SampleCount's
// group mean of n(2r−1) exactly (y_j is the integer Σr), so the two
// implementations return bit-identical estimates for equal seeds.
func (fq *SampleCountFQ) Estimate() float64 {
	fq.scratch = fq.scratch[:0]
	n := float64(fq.n)
	for j := 0; j < fq.cfg.S2; j++ {
		if fq.num[j] > 0 {
			num := float64(fq.num[j])
			fq.scratch = append(fq.scratch, n*(2*float64(fq.y[j])-num)/num)
		}
	}
	if len(fq.scratch) == 0 {
		return 0
	}
	return Median(fq.scratch)
}

// MemoryWords returns s.
func (fq *SampleCountFQ) MemoryWords() int { return fq.s }

// Len returns the current multiset size implied by the update stream.
func (fq *SampleCountFQ) Len() int64 { return fq.n }

// Config returns the tracker's configuration.
func (fq *SampleCountFQ) Config() Config { return fq.cfg }

// LiveSlots returns the number of live sample slots.
func (fq *SampleCountFQ) LiveSlots() int {
	live := 0
	for _, n := range fq.num {
		live += n
	}
	return live
}

// checkInvariants verifies the fast-query bookkeeping against a from-
// scratch recomputation (exported to tests via export_test.go).
func (fq *SampleCountFQ) checkInvariants() error {
	wantY := make([]int64, fq.cfg.S2)
	wantNum := make([]int, fq.cfg.S2)
	wantKV := map[uint64]map[int]int32{}
	for i := 0; i < fq.s; i++ {
		if !fq.inSample[i] {
			continue
		}
		v := fq.val[i]
		nv, ok := fq.nv[v]
		if !ok {
			return fmt.Errorf("live slot %d holds %d with no Nv", i, v)
		}
		r := nv - fq.entryN[i]
		if r < 1 {
			return fmt.Errorf("slot %d has r = %d", i, r)
		}
		g := fq.group(i)
		wantY[g] += r
		wantNum[g]++
		if wantKV[v] == nil {
			wantKV[v] = map[int]int32{}
		}
		wantKV[v][g]++
	}
	for j := 0; j < fq.cfg.S2; j++ {
		if wantY[j] != fq.y[j] {
			return fmt.Errorf("group %d: y = %v, recomputed %v", j, fq.y[j], wantY[j])
		}
		if wantNum[j] != fq.num[j] {
			return fmt.Errorf("group %d: num = %d, recomputed %d", j, fq.num[j], wantNum[j])
		}
	}
	for v, list := range fq.kv {
		for _, gc := range list {
			if wantKV[v][gc.group] != gc.count {
				return fmt.Errorf("kv[%d] group %d = %d, recomputed %d", v, gc.group, gc.count, wantKV[v][gc.group])
			}
		}
	}
	for v, groups := range wantKV {
		total := int32(0)
		for _, c := range fq.kv[v] {
			total += c.count
		}
		wantTotal := int32(0)
		for _, c := range groups {
			wantTotal += c
		}
		if total != wantTotal {
			return fmt.Errorf("kv[%d] total = %d, recomputed %d", v, total, wantTotal)
		}
	}
	return nil
}

var _ Tracker = (*SampleCountFQ)(nil)
