// Package core implements the paper's three self-join size trackers:
//
//   - TugOfWar (§2.2): the AMS F2 sketch. Each atomic estimator keeps a
//     counter Z = Σ_v ε_v·f_v with four-wise independent signs ε; X = Z² is
//     an unbiased estimator of SJ(R) with Var(X) ≤ 2·SJ(R)². The tracker
//     keeps s = s1·s2 such counters and answers queries with the median of
//     s2 group means of s1 estimators (Theorem 2.2).
//
//   - SampleCount (§2.1, Fig. 1): the improved sample-count algorithm with
//     reservoir-skipping position selection, O(1) amortized updates with
//     high probability, and deletion reversal (Theorem 2.1).
//
//   - NaiveSample (§2.3): the standard sampling baseline with the unbiased
//     scale-up estimator; it requires Ω(√n) samples in the worst case
//     (Lemma 2.3) and serves as the paper's strawman.
//
// All three satisfy the same Tracker interface so the experiment harness,
// the examples, and the public facade can treat them uniformly.
package core

import (
	"errors"
	"fmt"
	"math"

	"amstrack/internal/blob"
	"amstrack/internal/hash"
	"amstrack/internal/xrand"
)

// Tracker is the common interface of the self-join trackers: a limited-
// storage synopsis maintained under inserts and deletes that can estimate
// the self-join size of the current multiset on demand.
type Tracker interface {
	// Insert adds one occurrence of v to the tracked multiset.
	Insert(v uint64)
	// InsertBatch adds every value in vs, equivalent to calling Insert on
	// each in order; implementations may reorder internally for speed.
	InsertBatch(vs []uint64)
	// Delete removes one occurrence of v. Implementations that cannot
	// support deletion (NaiveSample) return an error.
	Delete(v uint64) error
	// DeleteBatch removes every value in vs, stopping at (and reporting)
	// the first failing delete.
	DeleteBatch(vs []uint64) error
	// Estimate returns the current self-join size estimate.
	Estimate() float64
	// MemoryWords returns the synopsis size in the paper's unit: the
	// number of Θ(log n)-bit memory words of state that scale with the
	// configured sample size.
	MemoryWords() int
}

// Config carries the two accuracy parameters shared by the trackers,
// exactly as in the paper: S1 controls accuracy (the group size of
// estimators that are averaged) and S2 controls confidence (the number of
// groups whose means are medianed). Total memory is s = S1·S2 words.
type Config struct {
	S1   int    // estimators per group (accuracy); must be >= 1
	S2   int    // number of groups (confidence); must be >= 1
	Seed uint64 // master seed; derived sub-seeds make runs reproducible
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.S1 < 1 {
		return fmt.Errorf("core: S1 = %d, must be >= 1", c.S1)
	}
	if c.S2 < 1 {
		return fmt.Errorf("core: S2 = %d, must be >= 1", c.S2)
	}
	return nil
}

// ConfigForError returns the Config that Theorem 2.2 prescribes for
// tug-of-war to achieve relative error eps with confidence 1-delta:
// s1 = ceil((4/eps)²) and s2 = ceil(2·log2(1/delta)).
func ConfigForError(eps, delta float64, seed uint64) (Config, error) {
	if eps <= 0 || eps >= 1 {
		return Config{}, fmt.Errorf("core: eps = %v, must be in (0,1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return Config{}, fmt.Errorf("core: delta = %v, must be in (0,1)", delta)
	}
	s1 := int(math.Ceil(16 / (eps * eps)))
	s2 := int(math.Ceil(2 * math.Log2(1/delta)))
	if s2 < 1 {
		s2 = 1
	}
	return Config{S1: s1, S2: s2, Seed: seed}, nil
}

// SampleCountConfigForError returns the Config Theorem 2.1 prescribes for
// sample-count on a domain of size t: s1 = ceil((4·t^¼/eps)²) = 16√t/eps².
func SampleCountConfigForError(eps, delta float64, domainSize int64, seed uint64) (Config, error) {
	if domainSize < 1 {
		return Config{}, fmt.Errorf("core: domain size = %d, must be >= 1", domainSize)
	}
	c, err := ConfigForError(eps, delta, seed)
	if err != nil {
		return Config{}, err
	}
	c.S1 = int(math.Ceil(16 * math.Sqrt(float64(domainSize)) / (eps * eps)))
	return c, nil
}

// TugOfWar is the AMS sketch tracker of §2.2. It maintains s1·s2 atomic
// counters Z_{i,j} = Σ_v ε_{i,j}(v)·f_v, each with its own four-wise
// independent ±1 hash function. Insert adds ε(v) to every counter; Delete
// subtracts it — the sketch is a linear function of the frequency vector,
// which is why deletions are exact here. Construct with NewTugOfWar.
type TugOfWar struct {
	cfg     Config
	fns     []hash.FourWise // len s1*s2, row-major: group j occupies [j*s1, (j+1)*s1)
	z       []int64         // counters, same layout
	n       int64           // current multiset size (diagnostics only)
	scratch []float64       // reusable buffer for group means
}

// NewTugOfWar builds a tug-of-war tracker. The hash functions are derived
// deterministically from cfg.Seed, so two trackers with the same Config
// hold identical sketch families (this property is what the join-signature
// scheme of §4.3 builds on).
func NewTugOfWar(cfg Config) (*TugOfWar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := cfg.S1 * cfg.S2
	t := &TugOfWar{
		cfg:     cfg,
		fns:     make([]hash.FourWise, s),
		z:       make([]int64, s),
		scratch: make([]float64, cfg.S2),
	}
	for k := 0; k < s; k++ {
		t.fns[k] = hash.NewFourWise(xrand.Mix64(cfg.Seed ^ uint64(k)*0x9e3779b97f4a7c15))
	}
	return t, nil
}

// Insert adds one occurrence of v. O(s) time, as stated by Theorem 2.2.
func (t *TugOfWar) Insert(v uint64) {
	for k := range t.z {
		t.z[k] += t.fns[k].Sign(v)
	}
	t.n++
}

// Delete removes one occurrence of v. The sketch cannot detect deletion of
// an absent value (that is the exact engine's job); it always succeeds and
// stays correct as long as the overall op sequence is valid.
func (t *TugOfWar) Delete(v uint64) error {
	for k := range t.z {
		t.z[k] -= t.fns[k].Sign(v)
	}
	t.n--
	return nil
}

// Estimate returns the median over s2 groups of the mean over s1 counters
// of Z², per Theorem 2.2.
func (t *TugOfWar) Estimate() float64 {
	s1 := t.cfg.S1
	for j := 0; j < t.cfg.S2; j++ {
		sum := 0.0
		for i := 0; i < s1; i++ {
			z := float64(t.z[j*s1+i])
			sum += z * z
		}
		t.scratch[j] = sum / float64(s1)
	}
	return Median(t.scratch)
}

// MemoryWords returns s1·s2: one word per counter. (Hash function
// coefficients are 4 extra words per counter; the paper counts the
// counters, and we report the same unit for comparability.)
func (t *TugOfWar) MemoryWords() int { return len(t.z) }

// Len returns the current multiset size implied by the update stream.
func (t *TugOfWar) Len() int64 { return t.n }

// Config returns the tracker's configuration.
func (t *TugOfWar) Config() Config { return t.cfg }

// Counters returns a copy of the raw Z counters (row-major, group j at
// [j*s1, (j+1)*s1)). The experiment harness uses it for the Fig. 15
// individual-estimator distribution plot.
func (t *TugOfWar) Counters() []int64 {
	out := make([]int64, len(t.z))
	copy(out, t.z)
	return out
}

// SetFrequencies loads the sketch directly from a frequency vector,
// replacing the current state: Z_k = Σ_v ε_k(v)·f_v. Because the sketch is
// linear, the result is bit-identical to inserting every occurrence one at
// a time; the experiment harness uses this to evaluate large sketch arrays
// quickly. Frequencies may be negative (the sketch is defined on any
// integer-valued frequency vector).
func (t *TugOfWar) SetFrequencies(freq map[uint64]int64) {
	for k := range t.z {
		t.z[k] = 0
	}
	t.n = 0
	for v, f := range freq {
		for k := range t.z {
			t.z[k] += t.fns[k].Sign(v) * f
		}
		t.n += f
	}
}

// Merge adds the counters of other into t. The two trackers must have the
// same Config (same seed, hence the same hash family); then the merged
// sketch is exactly the sketch of the concatenated streams — the property
// that lets per-partition sketches be combined at query time.
func (t *TugOfWar) Merge(other *TugOfWar) error {
	if t.cfg != other.cfg {
		return errors.New("core: cannot merge tug-of-war sketches with different configs")
	}
	for k := range t.z {
		t.z[k] += other.z[k]
	}
	t.n += other.n
	return nil
}

// MarshalBinary serializes the sketch via the shared blob codec: config,
// length, counters. The hash functions themselves are not stored — they
// are re-derived from the seed on load, which keeps signatures small
// enough to ship between nodes (the paper's motivation for per-relation
// signatures).
func (t *TugOfWar) MarshalBinary() ([]byte, error) {
	return marshalSketch(blob.MagicTugOfWar, t.cfg, t.n, t.z), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (t *TugOfWar) UnmarshalBinary(data []byte) error {
	cfg, n, z, err := unmarshalSketch(blob.MagicTugOfWar, "tug-of-war", data)
	if err != nil {
		return err
	}
	fresh, err := NewTugOfWar(cfg)
	if err != nil {
		return err
	}
	fresh.n = n
	copy(fresh.z, z)
	*t = *fresh
	return nil
}

// marshalSketch frames the (Config, length, counter vector) payload both
// sketch flavors share.
func marshalSketch(magic uint32, cfg Config, n int64, z []int64) []byte {
	b := blob.NewBuilder(magic, 1, 8*4+8*len(z))
	b.U64(uint64(cfg.S1))
	b.U64(uint64(cfg.S2))
	b.U64(cfg.Seed)
	b.I64(n)
	b.I64s(z)
	return b.Seal()
}

// unmarshalSketch opens and validates a sketch blob: framing first, then
// the config cross-checked against the counter payload size BEFORE any
// allocation scales with the header's claims.
func unmarshalSketch(magic uint32, kind string, data []byte) (Config, int64, []int64, error) {
	_, payload, err := blob.Open(magic, 1, data)
	if err != nil {
		return Config{}, 0, nil, fmt.Errorf("core: %s blob: %w", kind, err)
	}
	c := blob.NewCursor(payload)
	cfg := Config{S1: c.Int(), S2: c.Int(), Seed: c.U64()}
	n := c.I64()
	if c.Err() != nil {
		return Config{}, 0, nil, fmt.Errorf("core: %s blob: %w", kind, c.Err())
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, 0, nil, err
	}
	s := c.Remaining() / 8
	if c.Remaining() != 8*s || cfg.S1 > s || s%cfg.S1 != 0 || s/cfg.S1 != cfg.S2 {
		return Config{}, 0, nil, fmt.Errorf("core: %s blob length %d does not match config %dx%d", kind, len(data), cfg.S1, cfg.S2)
	}
	z := c.I64s(s)
	if err := c.Close(); err != nil {
		return Config{}, 0, nil, fmt.Errorf("core: %s blob: %w", kind, err)
	}
	return cfg, n, z, nil
}

// Median returns the median of xs (mean of the middle two for even length).
// It does not modify xs. It panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("core: median of empty slice")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	// Insertion sort: group counts are small (s2 <= a few dozen).
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	m := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[m]
	}
	return (tmp[m-1] + tmp[m]) / 2
}

// MedianOfMeans partitions xs into groups of size s1 (xs must have length
// s1·s2 for some s2 >= 1) and returns the median of the group means. It is
// the estimator combination rule both Theorems 2.1 and 2.2 use.
func MedianOfMeans(xs []float64, s1 int) (float64, error) {
	if s1 < 1 || len(xs) == 0 || len(xs)%s1 != 0 {
		return 0, fmt.Errorf("core: cannot split %d estimators into groups of %d", len(xs), s1)
	}
	s2 := len(xs) / s1
	means := make([]float64, s2)
	for j := 0; j < s2; j++ {
		sum := 0.0
		for i := 0; i < s1; i++ {
			sum += xs[j*s1+i]
		}
		means[j] = sum / float64(s1)
	}
	return Median(means), nil
}
