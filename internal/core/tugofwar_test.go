package core

import (
	"math"
	"testing"
	"testing/quick"

	"amstrack/internal/exact"
	"amstrack/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{S1: 1, S2: 1}).Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if err := (Config{S1: 0, S2: 1}).Validate(); err == nil {
		t.Fatal("S1=0 accepted")
	}
	if err := (Config{S1: 1, S2: 0}).Validate(); err == nil {
		t.Fatal("S2=0 accepted")
	}
}

func TestConfigForError(t *testing.T) {
	c, err := ConfigForError(0.1, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	// s1 = ceil(16/0.01) = 1600; s2 = ceil(2*log2(100)) = 14.
	if c.S1 != 1600 {
		t.Errorf("S1 = %d, want 1600", c.S1)
	}
	if c.S2 != 14 {
		t.Errorf("S2 = %d, want 14", c.S2)
	}
	if c.Seed != 7 {
		t.Errorf("Seed = %d", c.Seed)
	}
	for _, bad := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}, {-1, 0.5}, {0.5, -1}} {
		if _, err := ConfigForError(bad[0], bad[1], 0); err == nil {
			t.Errorf("ConfigForError(%v, %v) accepted", bad[0], bad[1])
		}
	}
}

func TestSampleCountConfigForError(t *testing.T) {
	c, err := SampleCountConfigForError(0.5, 0.25, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// s1 = ceil(16*sqrt(10000)/0.25) = ceil(16*100/0.25) = 6400.
	if c.S1 != 6400 {
		t.Errorf("S1 = %d, want 6400", c.S1)
	}
	if _, err := SampleCountConfigForError(0.5, 0.25, 0, 0); err == nil {
		t.Error("domain size 0 accepted")
	}
	if _, err := SampleCountConfigForError(0, 0.25, 10, 0); err == nil {
		t.Error("eps 0 accepted")
	}
}

func TestNewTugOfWarRejectsBadConfig(t *testing.T) {
	if _, err := NewTugOfWar(Config{S1: 0, S2: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestTugOfWarExactOnSingleValue(t *testing.T) {
	// A multiset of k copies of one value: every counter is ±k, so every
	// X = k², and the estimate is exactly SJ = k² regardless of s.
	tw, err := NewTugOfWar(Config{S1: 3, S2: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tw.Insert(42)
	}
	if got := tw.Estimate(); got != 100 {
		t.Fatalf("estimate = %v, want exactly 100", got)
	}
}

func TestTugOfWarEmptyIsZero(t *testing.T) {
	tw, _ := NewTugOfWar(Config{S1: 4, S2: 2, Seed: 1})
	if got := tw.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v", got)
	}
}

func TestTugOfWarInsertDeleteCancels(t *testing.T) {
	// The sketch is linear: inserting then deleting any multiset returns
	// every counter to zero.
	f := func(vals []uint8, seed uint64) bool {
		tw, err := NewTugOfWar(Config{S1: 4, S2: 2, Seed: seed})
		if err != nil {
			return false
		}
		for _, v := range vals {
			tw.Insert(uint64(v))
		}
		for _, v := range vals {
			if err := tw.Delete(uint64(v)); err != nil {
				return false
			}
		}
		for _, z := range tw.RawCounters() {
			if z != 0 {
				return false
			}
		}
		return tw.Estimate() == 0 && tw.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTugOfWarDeletionEquivalence(t *testing.T) {
	// Feeding insert/delete sequence Â must leave the sketch identical to
	// feeding its canonical insert-only sequence A (linearity).
	a, _ := NewTugOfWar(Config{S1: 8, S2: 2, Seed: 3})
	b, _ := NewTugOfWar(Config{S1: 8, S2: 2, Seed: 3})
	// Â: insert 1..5, delete 3, insert 3 3, delete 1.
	for _, v := range []uint64{1, 2, 3, 4, 5} {
		a.Insert(v)
	}
	_ = a.Delete(3)
	a.Insert(3)
	a.Insert(3)
	_ = a.Delete(1)
	// A: multiset {2,3,3,4,5}.
	for _, v := range []uint64{2, 3, 3, 4, 5} {
		b.Insert(v)
	}
	za, zb := a.RawCounters(), b.RawCounters()
	for k := range za {
		if za[k] != zb[k] {
			t.Fatalf("counter %d differs: %d vs %d", k, za[k], zb[k])
		}
	}
}

func TestTugOfWarUnbiasedOverSeeds(t *testing.T) {
	// E[X] = SJ: averaging single-counter estimates across many independent
	// seeds must converge to the exact self-join size.
	vals := []uint64{1, 1, 1, 2, 2, 3, 4, 5, 5, 5, 5, 6}
	sj := float64(exact.SelfJoinOf(vals))
	const seeds = 3000
	sum := 0.0
	for seed := uint64(0); seed < seeds; seed++ {
		tw, _ := NewTugOfWar(Config{S1: 1, S2: 1, Seed: seed})
		for _, v := range vals {
			tw.Insert(v)
		}
		sum += tw.Estimate()
	}
	mean := sum / seeds
	// Var(X) <= 2*SJ² → sigma of the mean <= SJ*sqrt(2/seeds) ≈ 0.026*SJ.
	if math.Abs(mean-sj)/sj > 0.15 {
		t.Fatalf("mean single-sketch estimate %.1f deviates from SJ %.1f", mean, sj)
	}
}

func TestTugOfWarAccuracyTheorem(t *testing.T) {
	// Theorem 2.2: relative error <= 4/sqrt(s1) with prob >= 1 - 2^{-s2/2}.
	// With s1=256, s2=8: error <= 0.25 with prob >= 0.93. Run 40 trials on
	// a skewed multiset and require at most a handful of violations.
	r := xrand.New(99)
	vals := make([]uint64, 20000)
	for i := range vals {
		vals[i] = r.Uint64n(200) * r.Uint64n(2) // skewed: many zeros
	}
	sj := float64(exact.SelfJoinOf(vals))
	violations := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		tw, _ := NewTugOfWar(Config{S1: 256, S2: 8, Seed: uint64(trial)})
		tw.SetFrequencies(exact.FromValues(vals).Frequencies())
		if exact.RelativeError(tw.Estimate(), sj) > 0.25 {
			violations++
		}
	}
	if violations > 6 {
		t.Fatalf("%d/%d trials exceeded the Theorem 2.2 error bound", violations, trials)
	}
}

func TestTugOfWarSetFrequenciesMatchesStreaming(t *testing.T) {
	f := func(vals []uint8, seed uint64) bool {
		cfg := Config{S1: 4, S2: 3, Seed: seed}
		a, _ := NewTugOfWar(cfg)
		b, _ := NewTugOfWar(cfg)
		h := exact.NewHistogram()
		for _, v := range vals {
			a.Insert(uint64(v))
			h.Insert(uint64(v))
		}
		b.SetFrequencies(h.Frequencies())
		za, zb := a.RawCounters(), b.RawCounters()
		for k := range za {
			if za[k] != zb[k] {
				return false
			}
		}
		return a.Len() == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTugOfWarMerge(t *testing.T) {
	cfg := Config{S1: 4, S2: 2, Seed: 5}
	whole, _ := NewTugOfWar(cfg)
	part1, _ := NewTugOfWar(cfg)
	part2, _ := NewTugOfWar(cfg)
	r := xrand.New(8)
	for i := 0; i < 1000; i++ {
		v := r.Uint64n(50)
		whole.Insert(v)
		if i%2 == 0 {
			part1.Insert(v)
		} else {
			part2.Insert(v)
		}
	}
	if err := part1.Merge(part2); err != nil {
		t.Fatal(err)
	}
	zw, zp := whole.RawCounters(), part1.RawCounters()
	for k := range zw {
		if zw[k] != zp[k] {
			t.Fatalf("merged counter %d = %d, whole-stream = %d", k, zp[k], zw[k])
		}
	}
	if part1.Len() != whole.Len() {
		t.Fatalf("merged Len = %d, want %d", part1.Len(), whole.Len())
	}
}

func TestTugOfWarMergeRejectsDifferentConfigs(t *testing.T) {
	a, _ := NewTugOfWar(Config{S1: 4, S2: 2, Seed: 5})
	b, _ := NewTugOfWar(Config{S1: 4, S2: 2, Seed: 6})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across seeds accepted")
	}
	c, _ := NewTugOfWar(Config{S1: 2, S2: 4, Seed: 5})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge across shapes accepted")
	}
}

func TestTugOfWarSerializationRoundTrip(t *testing.T) {
	tw, _ := NewTugOfWar(Config{S1: 8, S2: 3, Seed: 11})
	r := xrand.New(1)
	for i := 0; i < 500; i++ {
		tw.Insert(r.Uint64n(100))
	}
	blob, err := tw.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back TugOfWar
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != tw.Estimate() || back.Len() != tw.Len() || back.Config() != tw.Config() {
		t.Fatal("round trip changed sketch state")
	}
	// The restored sketch must keep tracking identically.
	tw.Insert(7)
	back.Insert(7)
	if back.Estimate() != tw.Estimate() {
		t.Fatal("restored sketch diverged on further inserts")
	}
}

func TestTugOfWarUnmarshalRejectsCorruption(t *testing.T) {
	tw, _ := NewTugOfWar(Config{S1: 2, S2: 2, Seed: 1})
	tw.Insert(1)
	blob, _ := tw.MarshalBinary()

	var back TugOfWar
	if err := back.UnmarshalBinary(blob[:10]); err == nil {
		t.Error("truncated blob accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[8] ^= 0xff
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Error("corrupted blob accepted (checksum)")
	}
	// Valid checksum but wrong magic.
	bad2 := append([]byte(nil), blob...)
	bad2[0] ^= 0xff
	// Recompute trailing checksum so only the magic check can fail.
	bad2 = bad2[:len(bad2)-4]
	sum := crc32ChecksumIEEE(bad2)
	bad2 = append(bad2, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
	if err := back.UnmarshalBinary(bad2); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestTugOfWarCountersCopy(t *testing.T) {
	tw, _ := NewTugOfWar(Config{S1: 2, S2: 1, Seed: 1})
	tw.Insert(5)
	c := tw.Counters()
	c[0] = 999
	if tw.Counters()[0] == 999 {
		t.Fatal("Counters returned live slice")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-1, -5, 2, 0, 7}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Median mutated input: %v", in)
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Median(nil) did not panic")
		}
	}()
	Median(nil)
}

func TestMedianOfMeans(t *testing.T) {
	// Groups (1,3), (10,20), (2,2): means 2, 15, 2 → median 2.
	got, err := MedianOfMeans([]float64{1, 3, 10, 20, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("MedianOfMeans = %v, want 2", got)
	}
	if _, err := MedianOfMeans([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("uneven split accepted")
	}
	if _, err := MedianOfMeans(nil, 1); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := MedianOfMeans([]float64{1}, 0); err == nil {
		t.Fatal("s1=0 accepted")
	}
}

// crc32ChecksumIEEE avoids importing hash/crc32 in two files of the test
// package under different names.
func crc32ChecksumIEEE(b []byte) uint32 {
	table := make([]uint32, 256)
	for i := range table {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xedb88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		table[i] = c
	}
	crc := ^uint32(0)
	for _, x := range b {
		crc = table[byte(crc)^x] ^ (crc >> 8)
	}
	return ^crc
}

func BenchmarkTugOfWarInsertS64(b *testing.B) {
	tw, _ := NewTugOfWar(Config{S1: 8, S2: 8, Seed: 1})
	for i := 0; i < b.N; i++ {
		tw.Insert(uint64(i & 1023))
	}
}

func BenchmarkTugOfWarEstimateS256(b *testing.B) {
	tw, _ := NewTugOfWar(Config{S1: 32, S2: 8, Seed: 1})
	for i := 0; i < 10000; i++ {
		tw.Insert(uint64(i & 255))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tw.Estimate()
	}
	_ = sink
}
