package core

import (
	"bytes"
	"testing"

	"amstrack/internal/exact"
	"amstrack/internal/xrand"
)

func TestSpaceSavingBasics(t *testing.T) {
	s, err := NewSpaceSaving(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpaceSaving(0, 1); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	for i := 0; i < 5; i++ {
		s.Insert(10)
	}
	s.Insert(20)
	s.Insert(20)
	s.Insert(30)
	if c, ok := s.Count(10); !ok || c != 5 {
		t.Fatalf("Count(10) = %d,%v want 5,true", c, ok)
	}
	// Table full; a new value evicts the minimum (30, count 1) and
	// inherits its count as error.
	s.Insert(40)
	if _, ok := s.Count(30); ok {
		t.Fatal("30 should have been evicted")
	}
	if c, ok := s.Count(40); !ok || c != 2 {
		t.Fatalf("Count(40) = %d,%v want 2,true", c, ok)
	}
	items := s.Items()
	if len(items) != 3 || items[0].Value != 10 || items[0].Count != 5 {
		t.Fatalf("canonical head = %+v", items)
	}
	for _, h := range items {
		if h.Err < 0 || h.Err > h.Count {
			t.Fatalf("entry %+v violates 0 ≤ err ≤ count", h)
		}
	}
	// Deletes: tracked values decrement and vanish at zero; untracked
	// values are ignored.
	s.Delete(40)
	s.Delete(40)
	if _, ok := s.Count(40); ok {
		t.Fatal("40 should be gone after deleting to zero")
	}
	s.Delete(999) // no-op
	if s.Len() != 2 {
		t.Fatalf("Len = %d want 2", s.Len())
	}
	if s.MemoryWords() != 9 {
		t.Fatalf("MemoryWords = %d want 9", s.MemoryWords())
	}
}

// TestSpaceSavingOverestimation checks the space-saving guarantee on an
// insert-only stream: for every tracked value, count − err ≤ f_v ≤ count.
func TestSpaceSavingOverestimation(t *testing.T) {
	s, _ := NewSpaceSaving(32, 7)
	truth := exact.NewHistogram()
	r := xrand.New(3)
	for i := 0; i < 20000; i++ {
		v := r.Uint64n(256) * r.Uint64n(4) // skewed-ish
		s.Insert(v)
		truth.Insert(v)
	}
	freqs := truth.Frequencies()
	for _, h := range s.Items() {
		f := freqs[h.Value]
		if f > h.Count || f < h.Count-h.Err {
			t.Fatalf("value %d: true %d outside [%d, %d]", h.Value, f, h.Count-h.Err, h.Count)
		}
	}
}

// TestSpaceSavingDeterminism: two tables fed the same stream hold the
// same entries and marshal to the same bytes, whatever the map
// iteration did internally.
func TestSpaceSavingDeterminism(t *testing.T) {
	mk := func() *SpaceSaving {
		s, _ := NewSpaceSaving(16, 99)
		r := xrand.New(11)
		for i := 0; i < 50000; i++ {
			v := r.Uint64n(200)
			if r.Uint64n(10) == 0 {
				s.Delete(v)
			} else {
				s.Insert(v)
			}
		}
		return s
	}
	a, b := mk(), mk()
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("same stream, different table bytes")
	}
	var back SpaceSaving
	if err := back.UnmarshalBinary(ab); err != nil {
		t.Fatal(err)
	}
	rb, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, rb) {
		t.Fatal("round trip not byte-identical")
	}
	if back.Capacity() != 16 || back.Seed() != 99 {
		t.Fatalf("round trip lost config: cap=%d seed=%d", back.Capacity(), back.Seed())
	}
}

// TestSpaceSavingBoundaryChurn tortures the table right at its capacity
// boundary: a domain slightly larger than the capacity with a heavy
// insert/delete churn, so evictions, re-admissions and delete-to-zero
// removals all fire constantly. The table must stay within invariants
// and remain a pure function of the stream.
func TestSpaceSavingBoundaryChurn(t *testing.T) {
	const cap = 8
	run := func() *SpaceSaving {
		s, _ := NewSpaceSaving(cap, 5)
		r := xrand.New(21)
		for i := 0; i < 100000; i++ {
			v := r.Uint64n(cap + 3)
			if r.Uint64n(3) == 0 {
				s.Delete(v)
			} else {
				s.Insert(v)
			}
			if s.Len() > cap {
				t.Fatalf("op %d: table overflowed to %d entries", i, s.Len())
			}
		}
		return s
	}
	a, b := run(), run()
	ab, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if !bytes.Equal(ab, bb) {
		t.Fatal("churned tables diverged")
	}
	for _, h := range a.Items() {
		if h.Count < 1 || h.Err < 0 || h.Err > h.Count {
			t.Fatalf("invariant violated: %+v", h)
		}
	}
}

// TestSpaceSavingMerge: the lossy merge rule — union, sum shared, keep
// top-capacity canonically — is order-independent and seed-guarded.
func TestSpaceSavingMerge(t *testing.T) {
	feed := func(s *SpaceSaving, seed uint64) {
		r := xrand.New(seed)
		for i := 0; i < 5000; i++ {
			s.Insert(r.Uint64n(40))
		}
	}
	a1, _ := NewSpaceSaving(12, 4)
	a2, _ := NewSpaceSaving(12, 4)
	b1, _ := NewSpaceSaving(12, 4)
	b2, _ := NewSpaceSaving(12, 4)
	feed(a1, 1)
	feed(b1, 1)
	feed(a2, 2)
	feed(b2, 2)
	if err := a1.Merge(a2); err != nil {
		t.Fatal(err)
	}
	if err := b2.Merge(b1); err != nil {
		t.Fatal(err)
	}
	am, _ := a1.MarshalBinary()
	bm, _ := b2.MarshalBinary()
	if !bytes.Equal(am, bm) {
		t.Fatal("merge is order-dependent")
	}
	if a1.Len() > a1.Capacity() {
		t.Fatalf("merge overflowed capacity: %d", a1.Len())
	}
	other, _ := NewSpaceSaving(12, 5)
	if err := a1.Merge(other); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	// Disjoint unions under capacity are exact.
	d1, _ := NewSpaceSaving(8, 4)
	d2, _ := NewSpaceSaving(8, 4)
	d1.Insert(1)
	d1.Insert(1)
	d2.Insert(2)
	u, _ := NewSpaceSaving(16, 4)
	u.MergeItems(d1.Items())
	u.MergeItems(d2.Items())
	if c, _ := u.Count(1); c != 2 {
		t.Fatalf("disjoint union lost mass: %d", c)
	}
	if u.Len() != 2 {
		t.Fatalf("disjoint union Len = %d", u.Len())
	}
}

func TestSpaceSavingUnmarshalRejects(t *testing.T) {
	s, _ := NewSpaceSaving(4, 1)
	s.Insert(1)
	s.Insert(1)
	s.Insert(2)
	good, _ := s.MarshalBinary()
	var back SpaceSaving
	// Truncations and corruptions must error, never panic.
	for i := 0; i < len(good); i++ {
		_ = back.UnmarshalBinary(good[:i])
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		_ = back.UnmarshalBinary(bad)
	}
	if err := back.UnmarshalBinary(good); err != nil {
		t.Fatal(err)
	}
}
