package core

import (
	"errors"
	"fmt"
	"sort"

	"amstrack/internal/blob"
	"amstrack/internal/xrand"
)

// SpaceSaving is a deterministic, deletion-aware space-saving table
// (Metwally–Agrawal–El Abbadi) tracking the ~capacity most frequent
// values of a stream. It is the exact half of a skimmed synopsis: the
// hitters it reports are estimated EXACTLY (count − err ≤ f_v ≤ count
// under insert-only streams) and subtracted from the sketch estimate,
// which then only has to absorb the low-frequency tail — the Rafiei–Deng
// skimming decomposition that cuts variance on skewed data at equal
// memory.
//
// Everything about the table is a pure function of the multiset of
// updates and (capacity, seed): eviction victims are picked by
// (count, seeded hash, value) and serialization orders entries
// canonically, so two replicas that saw the same ops hold — and
// marshal — identical bytes. That determinism is what lets the engine
// checkpoint, replay, and merge HH state with the same bit-identity
// discipline as the linear sketches (see DESIGN.md §13 for where the
// lossy merge deliberately relaxes it).
//
// The table is not safe for concurrent use; the engine keeps one per
// shard under the shard's existing write discipline.
type SpaceSaving struct {
	capacity int
	seed     uint64
	m        map[uint64]ssCell
}

type ssCell struct {
	count int64 // estimated frequency: true f_v ≤ count (insert-only)
	err   int64 // overestimation bound: count − err ≤ true f_v (insert-only)
}

// Hitter is one reported heavy hitter. Count is the table's frequency
// estimate for Value; Err bounds the overestimation inherited from
// evicted entries (0 for values that never shared a cell).
type Hitter struct {
	Value uint64
	Count int64
	Err   int64
}

// NewSpaceSaving returns an empty table holding at most capacity
// entries. The seed only breaks eviction ties; tables merge across any
// capacities but only across equal seeds.
func NewSpaceSaving(capacity int, seed uint64) (*SpaceSaving, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: space-saving capacity %d < 1", capacity)
	}
	return &SpaceSaving{capacity: capacity, seed: seed, m: make(map[uint64]ssCell, capacity)}, nil
}

// Capacity returns the maximum number of tracked values.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// Seed returns the tie-break seed.
func (s *SpaceSaving) Seed() uint64 { return s.seed }

// Len returns the number of currently tracked values.
func (s *SpaceSaving) Len() int { return len(s.m) }

// MemoryWords returns the table's budgeted storage in 64-bit words:
// three per slot (value, count, err), full capacity, occupied or not —
// the figure the equal-memory comparisons in the skimacc experiment
// charge against the sketch budget.
func (s *SpaceSaving) MemoryWords() int { return 3 * s.capacity }

// Insert counts one occurrence of v. If v is untracked and the table is
// full, the minimum entry is evicted (deterministic tie-break) and v
// inherits its count as overestimation error — standard space-saving.
func (s *SpaceSaving) Insert(v uint64) {
	if c, ok := s.m[v]; ok {
		c.count++
		s.m[v] = c
		return
	}
	if len(s.m) < s.capacity {
		s.m[v] = ssCell{count: 1}
		return
	}
	victim, min := s.victim()
	delete(s.m, victim)
	s.m[v] = ssCell{count: min + 1, err: min}
}

// Delete removes one occurrence of v. Untracked values are ignored —
// their mass lives in the sketch (which sees every op), so nothing is
// lost; the table's estimate for them was already "not a hitter". A
// tracked value whose count reaches zero leaves the table.
func (s *SpaceSaving) Delete(v uint64) {
	c, ok := s.m[v]
	if !ok {
		return
	}
	c.count--
	if c.count <= 0 {
		delete(s.m, v)
		return
	}
	if c.err > c.count {
		c.err = c.count
	}
	s.m[v] = c
}

// victim returns the entry to evict: minimum count, ties broken by the
// seeded hash of the value and then the value itself, so every replica
// evicts the same entry.
func (s *SpaceSaving) victim() (value uint64, count int64) {
	first := true
	var vh uint64
	for v, c := range s.m {
		h := xrand.Mix64(s.seed ^ v)
		if first || c.count < count || (c.count == count && (h < vh || (h == vh && v < value))) {
			value, count, vh, first = v, c.count, h, false
		}
	}
	return value, count
}

// Count returns the table's frequency estimate for v and whether v is
// currently tracked.
func (s *SpaceSaving) Count(v uint64) (int64, bool) {
	c, ok := s.m[v]
	return c.count, ok
}

// Frequencies returns the estimated frequency map of the tracked
// values — the f̂ vector the skimmed estimators subtract from the
// sketch. The map is a fresh copy.
func (s *SpaceSaving) Frequencies() map[uint64]int64 {
	out := make(map[uint64]int64, len(s.m))
	for v, c := range s.m {
		out[v] = c.count
	}
	return out
}

// SkimFrequencies returns the GUARANTEED frequency mass of the tracked
// values — count − err, the part of each estimate that cannot come from
// evicted strangers — omitting entries where nothing is guaranteed.
// This is the f̂ vector the skimmed estimators subtract: it stays
// unbiased for any deterministic f̂, and using only the reliable part
// keeps the subtraction from INJECTING variance on unskewed streams,
// where space-saving counts are dominated by inherited error (on a
// uniform stream count ≈ n/capacity but count − err ≈ 0, so skimming
// gracefully degrades to the plain sketch instead of exploding).
func (s *SpaceSaving) SkimFrequencies() map[uint64]int64 {
	out := make(map[uint64]int64, len(s.m))
	for v, c := range s.m {
		if g := c.count - c.err; g > 0 {
			out[v] = g
		}
	}
	return out
}

// Items returns the tracked entries in canonical order: count
// descending, then value ascending. The order is a pure function of the
// entry set; serialization uses it so equal tables marshal to equal
// bytes.
func (s *SpaceSaving) Items() []Hitter {
	out := make([]Hitter, 0, len(s.m))
	for v, c := range s.m {
		out = append(out, Hitter{Value: v, Count: c.count, Err: c.err})
	}
	sortHitters(out)
	return out
}

func sortHitters(hs []Hitter) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Count != hs[j].Count {
			return hs[i].Count > hs[j].Count
		}
		return hs[i].Value < hs[j].Value
	})
}

// Clone returns an independent deep copy.
func (s *SpaceSaving) Clone() *SpaceSaving {
	m := make(map[uint64]ssCell, len(s.m))
	for v, c := range s.m {
		m[v] = c
	}
	return &SpaceSaving{capacity: s.capacity, seed: s.seed, m: m}
}

// errSeedMismatch: tables with different tie-break seeds would evict
// differently and drift; refuse to merge them.
var errSeedMismatch = errors.New("core: space-saving seed mismatch")

// Merge folds other into s under the lossy skim-merge rule: union the
// entry sets, summing count and err for shared values, then keep the
// top-capacity entries in canonical order and DROP the rest. The
// dropped ("demoted") hitters lose exactness, never mass — every update
// behind them also flowed into the companion sketch, which is
// ingest-complete, so demotion just moves a value's estimate from the
// exact table back to the sketch (DESIGN.md §13). Result capacity is
// the receiver's; seeds must match.
func (s *SpaceSaving) Merge(other *SpaceSaving) error {
	if other.seed != s.seed {
		return fmt.Errorf("%w: %#x vs %#x", errSeedMismatch, s.seed, other.seed)
	}
	s.MergeItems(other.Items())
	return nil
}

// MergeItems applies the Merge rule to an explicit entry list (the form
// the engine uses when splitting a relation-level table back into
// per-shard tables): union, sum shared, keep top-capacity canonically,
// drop the rest.
func (s *SpaceSaving) MergeItems(items []Hitter) {
	for _, h := range items {
		c := s.m[h.Value]
		c.count += h.Count
		c.err += h.Err
		s.m[h.Value] = c
	}
	if len(s.m) <= s.capacity {
		return
	}
	all := s.Items()
	for _, h := range all[s.capacity:] {
		delete(s.m, h.Value)
	}
}

const spaceSavingVersion = 1

// MarshalBinary encodes the table as a versioned blob frame
// (blob.MagicSpaceSaving). Entries are written in canonical order, so
// equal tables produce equal bytes and any accepted input re-marshals
// byte-identically.
func (s *SpaceSaving) MarshalBinary() ([]byte, error) {
	b := blob.NewBuilder(blob.MagicSpaceSaving, spaceSavingVersion, 24+24*len(s.m))
	b.U64(uint64(s.capacity))
	b.U64(s.seed)
	b.U32(uint32(len(s.m)))
	for _, h := range s.Items() {
		b.U64(h.Value)
		b.I64(h.Count)
		b.I64(h.Err)
	}
	return b.Seal(), nil
}

// UnmarshalBinary decodes a table, replacing s. It rejects anything a
// well-formed marshal cannot produce — bad counts, duplicate or
// out-of-canonical-order entries, occupancy over capacity — so every
// accepted blob re-marshals to exactly the input bytes.
func (s *SpaceSaving) UnmarshalBinary(data []byte) error {
	_, payload, err := blob.Open(blob.MagicSpaceSaving, spaceSavingVersion, data)
	if err != nil {
		return err
	}
	c := blob.NewCursor(payload)
	capacity := c.Int()
	seed := c.U64()
	n := int(c.U32())
	if err := c.Err(); err != nil {
		return err
	}
	if capacity < 1 {
		return fmt.Errorf("core: space-saving blob: capacity %d < 1", capacity)
	}
	if n > capacity {
		return fmt.Errorf("core: space-saving blob: %d entries exceed capacity %d", n, capacity)
	}
	m := make(map[uint64]ssCell, n)
	prev := Hitter{Count: int64(^uint64(0) >> 1)} // sorts before everything
	for i := 0; i < n; i++ {
		h := Hitter{Value: c.U64(), Count: c.I64(), Err: c.I64()}
		if c.Err() != nil {
			return c.Err()
		}
		if h.Count < 1 || h.Err < 0 || h.Err > h.Count {
			return fmt.Errorf("core: space-saving blob: entry %d has count=%d err=%d", i, h.Count, h.Err)
		}
		if i > 0 && !(prev.Count > h.Count || (prev.Count == h.Count && prev.Value < h.Value)) {
			return fmt.Errorf("core: space-saving blob: entry %d out of canonical order", i)
		}
		m[h.Value] = ssCell{count: h.Count, err: h.Err}
		prev = h
	}
	if err := c.Close(); err != nil {
		return err
	}
	s.capacity, s.seed, s.m = capacity, seed, m
	return nil
}
