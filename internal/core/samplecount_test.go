package core

import (
	"math"
	"testing"
	"testing/quick"

	"amstrack/internal/exact"
	"amstrack/internal/xrand"
)

func newSC(t *testing.T, s1, s2 int, seed uint64, opts ...SampleCountOption) *SampleCount {
	t.Helper()
	sc, err := NewSampleCount(Config{S1: s1, S2: s2, Seed: seed}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestNewSampleCountRejectsBadConfig(t *testing.T) {
	if _, err := NewSampleCount(Config{S1: 0, S2: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSampleCountWindow(t *testing.T) {
	sc := newSC(t, 4, 4, 1)
	// s = 16 → window = 16*ceil(log2(16)) = 64.
	if sc.Window() != 64 {
		t.Fatalf("window = %d, want 64", sc.Window())
	}
	sc2 := newSC(t, 1, 1, 1)
	if sc2.Window() != 1 {
		t.Fatalf("s=1 window = %d, want 1", sc2.Window())
	}
	sc3 := newSC(t, 4, 4, 1, WithWindowFromStart())
	if sc3.Window() != 1 {
		t.Fatalf("WithWindowFromStart window = %d, want 1", sc3.Window())
	}
}

func TestSampleCountEmptyEstimate(t *testing.T) {
	sc := newSC(t, 4, 2, 1)
	if got := sc.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v", got)
	}
}

func TestSampleCountExactOnConstantStream(t *testing.T) {
	// All items identical: every live slot has r = n − entry position + ...
	// more precisely each slot's X = n(2r−1) and averaging over uniform
	// positions gives SJ = n² in expectation; for a single value the
	// estimate from any FULL sample is n(2·mean(r)−1) where the r are the
	// suffix counts of sampled positions. With window-from-start and s
	// large relative to n the sample is dense, so the estimate must land
	// within the Theorem 2.1 band around n².
	sc := newSC(t, 64, 4, 7, WithWindowFromStart())
	const n = 4096
	for i := 0; i < n; i++ {
		sc.Insert(99)
	}
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := sc.Estimate()
	want := float64(n) * float64(n)
	if exact.RelativeError(got, want) > 0.35 {
		t.Fatalf("estimate = %v, want within 35%% of %v", got, want)
	}
}

func TestSampleCountInvariantsUnderInserts(t *testing.T) {
	r := xrand.New(3)
	sc := newSC(t, 8, 4, 5, WithWindowFromStart())
	for i := 0; i < 20000; i++ {
		sc.Insert(r.Uint64n(64))
		if i%997 == 0 {
			if err := sc.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 20000 {
		t.Fatalf("Len = %d", sc.Len())
	}
}

func TestSampleCountInvariantsUnderMixedOps(t *testing.T) {
	r := xrand.New(17)
	sc := newSC(t, 8, 4, 9, WithWindowFromStart())
	h := exact.NewHistogram()
	live := []uint64{}
	for i := 0; i < 30000; i++ {
		if len(live) > 10 && r.Float64() < 0.18 {
			k := r.Intn(len(live))
			v := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := sc.Delete(v); err != nil {
				t.Fatalf("delete %d: %v", v, err)
			}
			if err := h.Delete(v); err != nil {
				t.Fatal(err)
			}
		} else {
			v := r.Uint64n(48)
			sc.Insert(v)
			h.Insert(v)
			live = append(live, v)
		}
		if i%1371 == 0 {
			if err := sc.CheckInvariants(); err != nil {
				t.Fatalf("after %d ops: %v", i+1, err)
			}
		}
	}
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if sc.Len() != h.Len() {
		t.Fatalf("Len = %d, exact = %d", sc.Len(), h.Len())
	}
}

func TestSampleCountLiveSlotsAfterDeletions(t *testing.T) {
	// Paper's Chernoff claim: with deletes <= 1/5 of any prefix, at least
	// s/2 sample points survive with high probability.
	r := xrand.New(23)
	sc := newSC(t, 16, 4, 31, WithWindowFromStart())
	live := []uint64{}
	ops := 0
	dels := 0
	for ops < 50000 {
		ops++
		if len(live) > 10 && float64(dels+1) <= 0.2*float64(ops) && r.Float64() < 0.25 {
			k := r.Intn(len(live))
			v := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := sc.Delete(v); err != nil {
				t.Fatal(err)
			}
			dels++
		} else {
			v := r.Uint64n(256)
			sc.Insert(v)
			live = append(live, v)
		}
	}
	if got, s := sc.LiveSlots(), sc.MemoryWords(); got < s/2 {
		t.Fatalf("only %d/%d slots live after deletion mix", got, s)
	}
}

func TestSampleCountDeletionEquivalenceDistribution(t *testing.T) {
	// Â (with deletions) and its canonical A must give estimates in the
	// same ballpark: run both on the same final multiset and compare the
	// averaged estimates across seeds. This is a distributional check, not
	// bit-equality (the two runs sample different positions).
	r := xrand.New(5)
	values := make([]uint64, 8000)
	for i := range values {
		values[i] = r.Uint64n(40)
	}
	// Build Â: values with 15% uniform deletions; A: its canonical form.
	const seeds = 30
	sumMixed, sumCanon := 0.0, 0.0
	var exactSJ float64
	for seed := uint64(0); seed < seeds; seed++ {
		mixed := newSC(t, 32, 4, seed, WithWindowFromStart())
		canon := newSC(t, 32, 4, seed+1000, WithWindowFromStart())
		h := exact.NewHistogram()
		liveVals := []uint64{}
		rr := xrand.New(777) // same deletion pattern every seed
		var canonical []uint64
		for _, v := range values {
			mixed.Insert(v)
			h.Insert(v)
			liveVals = append(liveVals, v)
			if len(liveVals) > 5 && rr.Float64() < 0.15 {
				k := rr.Intn(len(liveVals))
				d := liveVals[k]
				liveVals[k] = liveVals[len(liveVals)-1]
				liveVals = liveVals[:len(liveVals)-1]
				if err := mixed.Delete(d); err != nil {
					t.Fatal(err)
				}
				if err := h.Delete(d); err != nil {
					t.Fatal(err)
				}
			}
		}
		canonical = liveVals
		for _, v := range canonical {
			canon.Insert(v)
		}
		exactSJ = float64(h.SelfJoin())
		sumMixed += mixed.Estimate()
		sumCanon += canon.Estimate()
	}
	meanMixed := sumMixed / seeds
	meanCanon := sumCanon / seeds
	if exact.RelativeError(meanMixed, exactSJ) > 0.25 {
		t.Errorf("mixed-mean %.3g deviates from exact %.3g", meanMixed, exactSJ)
	}
	if exact.RelativeError(meanCanon, exactSJ) > 0.25 {
		t.Errorf("canonical-mean %.3g deviates from exact %.3g", meanCanon, exactSJ)
	}
	if exact.RelativeError(meanMixed, meanCanon) > 0.3 {
		t.Errorf("mixed %.3g vs canonical %.3g disagree", meanMixed, meanCanon)
	}
}

func TestSampleCountUnbiasedOverSeeds(t *testing.T) {
	// E[X] = SJ for the atomic estimator; mean estimate over many seeds on
	// a small stream must approach the exact self-join size.
	vals := []uint64{1, 1, 1, 1, 2, 2, 3, 3, 3, 4, 5, 5, 6, 7, 7, 7}
	sj := float64(exact.SelfJoinOf(vals))
	const seeds = 2000
	sum := 0.0
	for seed := uint64(0); seed < seeds; seed++ {
		sc, _ := NewSampleCount(Config{S1: 1, S2: 1, Seed: seed}, WithWindowFromStart())
		for _, v := range vals {
			sc.Insert(v)
		}
		sum += sc.Estimate()
	}
	mean := sum / seeds
	if math.Abs(mean-sj)/sj > 0.1 {
		t.Fatalf("mean estimate %.2f deviates from SJ %.0f", mean, sj)
	}
}

func TestSampleCountPositionUniformity(t *testing.T) {
	// With a single slot and window-from-start, after n inserts the held
	// position must be uniform over {1..n}: check the mean rank across
	// seeds. Position is recovered via r on a stream of distinct values
	// then all-same tail... simpler: stream of all-distinct values, the
	// slot's r is always 1; instead use value=index to identify position.
	const n = 200
	const seeds = 3000
	sumPos := 0.0
	for seed := uint64(0); seed < seeds; seed++ {
		sc, _ := NewSampleCount(Config{S1: 1, S2: 1, Seed: seed}, WithWindowFromStart())
		for i := 1; i <= n; i++ {
			sc.Insert(uint64(i))
		}
		// The single slot holds value = its sampled position.
		est := sc.Estimate() // n(2r−1) with r = 1 → n; not informative.
		_ = est
		// Reach in via the public-ish surface: LiveSlots must be 1; recover
		// the value through the estimate of a follow-up trick instead.
		// Simplest: inspect via invariant check + the val array is not
		// exported, so instead re-derive: insert n more copies of a marker
		// value and... — rather than contort, check uniformity through r on
		// an all-equal stream below.
		sumPos += float64(sc.LiveSlots())
	}
	if sumPos != seeds {
		t.Fatalf("slot not always live: %v/%v", sumPos, seeds)
	}

	// All-equal stream: r = n − p + 1, so E[p] uniform ⇔ E[r] = (n+1)/2.
	sumR := 0.0
	for seed := uint64(0); seed < seeds; seed++ {
		sc, _ := NewSampleCount(Config{S1: 1, S2: 1, Seed: seed}, WithWindowFromStart())
		for i := 0; i < n; i++ {
			sc.Insert(7)
		}
		// X = n(2r−1) → r = (X/n + 1)/2.
		r := (sc.Estimate()/float64(n) + 1) / 2
		sumR += r
	}
	meanR := sumR / seeds
	want := float64(n+1) / 2
	// sigma of mean ≈ n/sqrt(12*seeds) ≈ 1.05; allow 5 sigma.
	if math.Abs(meanR-want) > 5.5 {
		t.Fatalf("mean r = %.2f, want %.2f (positions not uniform)", meanR, want)
	}
}

func TestSampleCountAccuracyOnSkewedStream(t *testing.T) {
	// End-to-end accuracy: zipf-ish stream, s = 512 words; sample-count
	// should land within ~20% of the exact SJ for most seeds.
	r := xrand.New(4)
	z := xrand.NewZipf(r, 1.0, 1000)
	values := make([]uint64, 60000)
	for i := range values {
		values[i] = uint64(z.Next())
	}
	sj := float64(exact.SelfJoinOf(values))
	bad := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		sc, _ := NewSampleCount(Config{S1: 64, S2: 8, Seed: uint64(trial)}, WithWindowFromStart())
		for _, v := range values {
			sc.Insert(v)
		}
		if exact.RelativeError(sc.Estimate(), sj) > 0.25 {
			bad++
		}
	}
	if bad > 2 {
		t.Fatalf("%d/%d trials off by more than 25%%", bad, trials)
	}
}

func TestSampleCountPaperWindowNeedsLongStream(t *testing.T) {
	// With the paper's initial window (s log s), a stream shorter than the
	// window fills only part of the sample — the theorem's n >= s·log s
	// precondition. Verify slots stay empty on a short stream and the
	// tracker still answers without panicking.
	sc := newSC(t, 16, 4, 2) // s=64, window = 64*6 = 384
	for i := 0; i < 100; i++ {
		sc.Insert(uint64(i))
	}
	if live := sc.LiveSlots(); live >= 64 {
		t.Fatalf("all %d slots live on a stream shorter than the window", live)
	}
	_ = sc.Estimate() // must not panic
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCountDeleteOfUnseenValue(t *testing.T) {
	// Deleting a value that is not in the sample only adjusts n; the caller
	// (stream.Validate) guarantees the op sequence is valid.
	sc := newSC(t, 4, 2, 3, WithWindowFromStart())
	sc.Insert(1)
	sc.Insert(2)
	if err := sc.Delete(2); err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", sc.Len())
	}
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCountInsertDeleteAllReturnsEmpty(t *testing.T) {
	f := func(vals []uint8, seed uint64) bool {
		sc, err := NewSampleCount(Config{S1: 4, S2: 2, Seed: seed}, WithWindowFromStart())
		if err != nil {
			return false
		}
		for _, v := range vals {
			sc.Insert(uint64(v))
		}
		// Delete in LIFO order (always valid).
		for k := len(vals) - 1; k >= 0; k-- {
			if err := sc.Delete(uint64(vals[k])); err != nil {
				return false
			}
		}
		return sc.Len() == 0 && sc.LiveSlots() == 0 && sc.Estimate() == 0 && sc.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCountMemoryWords(t *testing.T) {
	sc := newSC(t, 8, 4, 1)
	if sc.MemoryWords() != 32 {
		t.Fatalf("MemoryWords = %d, want 32", sc.MemoryWords())
	}
	if sc.Config().S1 != 8 || sc.Config().S2 != 4 {
		t.Fatalf("Config = %+v", sc.Config())
	}
}

// TestSampleCountBoundedState verifies the O(s) space claim: the live
// tables never exceed a constant multiple of s regardless of stream length
// or domain size.
func TestSampleCountBoundedState(t *testing.T) {
	r := xrand.New(6)
	sc := newSC(t, 8, 4, 12, WithWindowFromStart()) // s = 32
	for i := 0; i < 100000; i++ {
		sc.Insert(r.Uint64()) // huge domain: nearly all values distinct
	}
	if len(sc.nv) > sc.s {
		t.Fatalf("nv table has %d entries for s = %d", len(sc.nv), sc.s)
	}
	if len(sc.head) > sc.s {
		t.Fatalf("head table has %d entries for s = %d", len(sc.head), sc.s)
	}
	if len(sc.pm) > sc.s {
		t.Fatalf("pm table has %d entries for s = %d", len(sc.pm), sc.s)
	}
}

func BenchmarkSampleCountInsert(b *testing.B) {
	sc, _ := NewSampleCount(Config{S1: 128, S2: 8, Seed: 1}, WithWindowFromStart())
	r := xrand.New(2)
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = r.Uint64n(1 << 14)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Insert(vals[i&(1<<16-1)])
	}
}

func BenchmarkSampleCountEstimate(b *testing.B) {
	sc, _ := NewSampleCount(Config{S1: 128, S2: 8, Seed: 1}, WithWindowFromStart())
	r := xrand.New(2)
	for i := 0; i < 100000; i++ {
		sc.Insert(r.Uint64n(1 << 12))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += sc.Estimate()
	}
	_ = sink
}
