package amstrack

import (
	"amstrack/internal/exact"
	"amstrack/internal/join"
)

// SignatureFamily identifies a shared set of k four-wise independent ±1
// hash functions. Every relation whose join sizes should be mutually
// estimable must build its signature from the same family (same k and
// seed) — the unbiasedness E[S(F)·S(G)] = |F ⋈ G| holds only under shared
// hash functions (§4.3).
type SignatureFamily = join.Family

// NewSignatureFamily creates a family of k hash functions from seed.
// k is the per-relation signature size in memory words.
func NewSignatureFamily(k int, seed uint64) (*SignatureFamily, error) {
	return join.NewFamily(k, seed)
}

// JoinSignature is a k-TW join signature for one relation, maintained
// incrementally under tuple inserts and deletes (§4.3). It also answers
// self-join estimates from its own counters, which is how the k-TW error
// bound √(2·SJ(F)·SJ(G)/k) can be evaluated online.
type JoinSignature = join.TWSignature

// Signature is the common interface of the join signature schemes (the
// flat JoinSignature and the bucketed FastJoinSignature); EstimateJoin
// and EstimateJoinRobust accept either, provided both sides share one
// scheme and family.
type Signature = join.Signature

// FastSignatureFamily is the bucketed counterpart of SignatureFamily:
// `rows` tabulation hashes over `buckets` counters each, one counter
// touched per row per update — O(rows) ingest work however large the
// signature grows, with the same Lemma 4.4 variance bound at equal
// memory (k = buckets·rows).
type FastSignatureFamily = join.FastFamily

// NewFastSignatureFamily creates a bucketed family from seed.
func NewFastSignatureFamily(buckets, rows int, seed uint64) (*FastSignatureFamily, error) {
	return join.NewFastFamily(buckets, rows, seed)
}

// FastJoinSignature is the bucketed k-TW join signature with O(rows)
// updates.
type FastJoinSignature = join.FastTWSignature

// EstimateJoin returns the unbiased join-size estimator of |F ⋈ G| from
// two signatures of one scheme and family (Lemma 4.4: unbiased,
// Var ≤ 2·SJ(F)·SJ(G)/k for k total memory words — for either scheme).
func EstimateJoin(f, g Signature) (float64, error) { return join.EstimateJoin(f, g) }

// EstimateJoinRobust is EstimateJoin with a median-of-means combination
// over groups of groupSize per-term estimates (groupSize must divide the
// term count: k for the flat scheme, rows for the fast one); it trades a
// constant variance factor for exponentially better tail bounds.
func EstimateJoinRobust(f, g Signature, groupSize int) (float64, error) {
	return join.EstimateJoinMedianOfMeans(f, g, groupSize)
}

// JoinErrorBound returns the one-standard-deviation bound
// √(2·sjF·sjG/k) of Lemma 4.4 / Theorem 4.5.
func JoinErrorBound(sjF, sjG float64, k int) float64 { return join.ErrorBound(sjF, sjG, k) }

// SignatureSizeForError returns the Theorem 4.5 signature size k needed to
// estimate joins of size ≥ joinLB within relative error eps (one standard
// deviation) when both self-join sizes are ≤ sjUB.
func SignatureSizeForError(eps, joinLB, sjUB float64) (int, error) {
	return join.KForError(eps, joinLB, sjUB)
}

// JoinUpperBound returns the Fact 1.1 bound |F ⋈ G| ≤ (SJ(F)+SJ(G))/2 from
// two self-join sizes (exact or estimated).
func JoinUpperBound(sjF, sjG float64) float64 {
	return exact.JoinUpperBound(int64(sjF), int64(sjG))
}

// ChainFamily is a shared hash family for three-way chain joins
// F ⋈_a G ⋈_b H — the paper's §5 future-work scenario, realized with one
// independent four-wise family per join attribute (Dobra et al. 2002).
type ChainFamily = join.ChainFamily

// NewChainFamily creates a chain family of k words per relation.
func NewChainFamily(k int, seed uint64) (*ChainFamily, error) { return join.NewChainFamily(k, seed) }

// ChainEndSignature sketches an end relation of a three-way chain join.
type ChainEndSignature = join.ChainEndSignature

// ChainMiddleSignature sketches the middle relation (both attributes).
type ChainMiddleSignature = join.ChainMiddleSignature

// EstimateChainJoin returns the unbiased three-way chain join estimate
// mean_m S(F)[m]·S(G)[m]·S(H)[m] for signatures of one ChainFamily.
func EstimateChainJoin(f *ChainEndSignature, g *ChainMiddleSignature, h *ChainEndSignature) (float64, error) {
	return join.EstimateChainJoin(f, g, h)
}
