package amstrack_test

import (
	"fmt"

	"amstrack"
)

// Track the self-join size of a small multiset and compare with the exact
// value. With a single distinct value the sketch is exact, which makes the
// example deterministic.
func ExampleNewTugOfWar() {
	sketch, err := amstrack.NewTugOfWar(amstrack.Config{S1: 16, S2: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 10; i++ {
		sketch.Insert(42)
	}
	fmt.Println(sketch.Estimate()) // 10 copies → SJ = 10² = 100
	if err := sketch.Delete(42); err != nil {
		panic(err)
	}
	fmt.Println(sketch.Estimate()) // deletion is exact: 9² = 81
	// Output:
	// 100
	// 81
}

// Estimate a join size from two per-relation signatures. Relations holding
// only one shared value give the exact product.
func ExampleEstimateJoin() {
	fam, err := amstrack.NewSignatureFamily(8, 7)
	if err != nil {
		panic(err)
	}
	orders, items := fam.NewSignature(), fam.NewSignature()
	for i := 0; i < 6; i++ {
		orders.Insert(1001) // six orders for customer 1001
	}
	for i := 0; i < 4; i++ {
		items.Insert(1001) // four items for customer 1001
	}
	est, err := amstrack.EstimateJoin(orders, items)
	if err != nil {
		panic(err)
	}
	fmt.Println(est)
	// Output:
	// 24
}

// Recover the parameter of an exponentially distributed attribute from
// its tracked self-join size (Fact 1.2).
func ExampleExponentialParameter() {
	n := int64(1000)
	selfJoin := 500000.0 // SJ = n²(a−1)/(a+1) with a = 3
	a, err := amstrack.ExponentialParameter(n, selfJoin)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f\n", a)
	// Output:
	// 3.0
}

// A catalog holds one signature per relation and answers any pairwise
// join-size question at planning time.
func ExampleNewCatalog() {
	cat, err := amstrack.NewCatalog(amstrack.CatalogOptions{SignatureWords: 8, Seed: 5})
	if err != nil {
		panic(err)
	}
	f, _ := cat.Define("orders")
	g, _ := cat.Define("lineitems")
	for i := 0; i < 3; i++ {
		f.Insert(9)
	}
	for i := 0; i < 5; i++ {
		g.Insert(9)
	}
	est, err := cat.EstimateJoin("orders", "lineitems")
	if err != nil {
		panic(err)
	}
	fmt.Println(est.Estimate)
	// Output:
	// 15
}

// Three-way chain join estimation (the paper's §5 future-work scenario):
// F ⋈_a G ⋈_b H from three independent signatures.
func ExampleEstimateChainJoin() {
	fam, err := amstrack.NewChainFamily(8, 3)
	if err != nil {
		panic(err)
	}
	f, _ := fam.NewEndSignature(0)
	h, _ := fam.NewEndSignature(1)
	g := fam.NewMiddleSignature()
	for i := 0; i < 3; i++ {
		f.Insert(1) // three F-tuples with a = 1
	}
	for i := 0; i < 5; i++ {
		g.Insert(1, 2) // five G-tuples with (a, b) = (1, 2)
	}
	for i := 0; i < 7; i++ {
		h.Insert(2) // seven H-tuples with b = 2
	}
	est, err := amstrack.EstimateChainJoin(f, g, h)
	if err != nil {
		panic(err)
	}
	fmt.Println(est) // 3 · 5 · 7
	// Output:
	// 105
}
