package amstrack_test

import (
	"math"
	"testing"

	"amstrack"
	"amstrack/internal/xrand"
)

func TestPublicTrackersEndToEnd(t *testing.T) {
	r := xrand.New(1)
	values := make([]uint64, 50000)
	for i := range values {
		values[i] = r.Uint64n(500) * (r.Uint64n(3) + 1) // mildly skewed
	}
	ex := amstrack.NewExact()
	for _, v := range values {
		ex.Insert(v)
	}
	truth := ex.Estimate()

	cfg := amstrack.Config{S1: 128, S2: 8, Seed: 7}
	trackers := map[string]amstrack.Tracker{}
	tw, err := amstrack.NewTugOfWar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trackers["tug-of-war"] = tw
	sc, err := amstrack.NewSampleCount(cfg, amstrack.WithWindowFromStart())
	if err != nil {
		t.Fatal(err)
	}
	trackers["sample-count"] = sc
	ns, err := amstrack.NewNaiveSample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trackers["naive-sampling"] = ns

	for name, tr := range trackers {
		for _, v := range values {
			tr.Insert(v)
		}
		est := tr.Estimate()
		relErr := math.Abs(est-truth) / truth
		// s = 1024 words; all three should land within 30% here.
		if relErr > 0.3 {
			t.Errorf("%s: estimate %.3g vs exact %.3g (relerr %.2f)", name, est, truth, relErr)
		}
		if tr.MemoryWords() != 1024 {
			t.Errorf("%s: MemoryWords = %d, want 1024", name, tr.MemoryWords())
		}
	}
}

func TestPublicDeletions(t *testing.T) {
	cfg := amstrack.Config{S1: 64, S2: 4, Seed: 3}
	tw, _ := amstrack.NewTugOfWar(cfg)
	sc, _ := amstrack.NewSampleCount(cfg, amstrack.WithWindowFromStart())
	ex := amstrack.NewExact()

	r := xrand.New(5)
	live := []uint64{}
	for i := 0; i < 20000; i++ {
		if len(live) > 10 && r.Float64() < 0.15 {
			k := r.Intn(len(live))
			v := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			for _, tr := range []amstrack.Tracker{tw, sc, ex} {
				if err := tr.Delete(v); err != nil {
					t.Fatalf("delete: %v", err)
				}
			}
		} else {
			v := r.Uint64n(100)
			live = append(live, v)
			tw.Insert(v)
			sc.Insert(v)
			ex.Insert(v)
		}
	}
	truth := ex.Estimate()
	for name, tr := range map[string]amstrack.Tracker{"tug-of-war": tw, "sample-count": sc} {
		if relErr := math.Abs(tr.Estimate()-truth) / truth; relErr > 0.35 {
			t.Errorf("%s after deletions: relerr %.2f (est %.3g, exact %.3g)", name, relErr, tr.Estimate(), truth)
		}
	}
}

func TestExactTracker(t *testing.T) {
	ex := amstrack.NewExact()
	ex.Insert(1)
	ex.Insert(1)
	ex.Insert(2)
	if ex.Estimate() != 5 {
		t.Fatalf("exact estimate = %v", ex.Estimate())
	}
	if ex.MemoryWords() != 2 {
		t.Fatalf("exact memory = %d", ex.MemoryWords())
	}
	if ex.Len() != 3 {
		t.Fatalf("exact len = %d", ex.Len())
	}
	if err := ex.Delete(3); err == nil {
		t.Fatal("delete of absent value accepted")
	}
	other := amstrack.NewExact()
	other.Insert(1)
	if got := ex.JoinSize(other); got != 2 {
		t.Fatalf("join size = %d", got)
	}
}

func TestConfigForErrorPublic(t *testing.T) {
	cfg, err := amstrack.ConfigForError(0.2, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.S1 != 400 {
		t.Fatalf("S1 = %d, want 400", cfg.S1)
	}
	cfg2, err := amstrack.SampleCountConfigForError(0.2, 0.05, 1<<16, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.S1 <= cfg.S1 {
		t.Fatal("sample-count config not larger than tug-of-war's")
	}
}

func TestJoinSignaturesEndToEnd(t *testing.T) {
	fam, err := amstrack.NewSignatureFamily(512, 21)
	if err != nil {
		t.Fatal(err)
	}
	sf, sg := fam.NewSignature(), fam.NewSignature()
	exF, exG := amstrack.NewExact(), amstrack.NewExact()
	r := xrand.New(11)
	for i := 0; i < 40000; i++ {
		fv, gv := r.Uint64n(300), r.Uint64n(300)
		sf.Insert(fv)
		exF.Insert(fv)
		sg.Insert(gv)
		exG.Insert(gv)
	}
	truth := float64(exF.JoinSize(exG))
	est, err := amstrack.EstimateJoin(sf, sg)
	if err != nil {
		t.Fatal(err)
	}
	bound := amstrack.JoinErrorBound(exF.Estimate(), exG.Estimate(), 512)
	if math.Abs(est-truth) > 4*bound {
		t.Fatalf("join estimate %.3g off truth %.3g by more than 4σ (σ=%.3g)", est, truth, bound)
	}
	robust, err := amstrack.EstimateJoinRobust(sf, sg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(robust-truth) > 4*bound {
		t.Fatalf("robust join estimate %.3g off truth %.3g", robust, truth)
	}
	// Fact 1.1 sanity: the bound must dominate the truth.
	if ub := amstrack.JoinUpperBound(exF.Estimate(), exG.Estimate()); ub < truth {
		t.Fatalf("Fact 1.1 bound %.3g below join size %.3g", ub, truth)
	}
}

func TestSignatureSizeForError(t *testing.T) {
	k, err := amstrack.SignatureSizeForError(0.5, 1000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if k != 800 {
		t.Fatalf("k = %d, want 800", k)
	}
}

func TestExponentialParameterPublic(t *testing.T) {
	// Idealized: SJ = n²(a−1)/(a+1) with a=3 → SJ = n²/2.
	n := int64(1000)
	a, err := amstrack.ExponentialParameter(n, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-3) > 1e-9 {
		t.Fatalf("a = %v, want 3", a)
	}
}

func TestTugOfWarMergePublic(t *testing.T) {
	cfg := amstrack.Config{S1: 32, S2: 4, Seed: 13}
	a, _ := amstrack.NewTugOfWar(cfg)
	b, _ := amstrack.NewTugOfWar(cfg)
	whole, _ := amstrack.NewTugOfWar(cfg)
	r := xrand.New(9)
	for i := 0; i < 10000; i++ {
		v := r.Uint64n(200)
		whole.Insert(v)
		if i%2 == 0 {
			a.Insert(v)
		} else {
			b.Insert(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatal("merged estimate differs from whole-stream estimate")
	}
}

func TestSampleCountFQPublic(t *testing.T) {
	cfg := amstrack.Config{S1: 32, S2: 4, Seed: 5}
	sc, err := amstrack.NewSampleCount(cfg, amstrack.WithWindowFromStart())
	if err != nil {
		t.Fatal(err)
	}
	fq, err := amstrack.NewSampleCountFQ(cfg, amstrack.WithWindowFromStart())
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(8)
	for i := 0; i < 20000; i++ {
		v := r.Uint64n(64)
		sc.Insert(v)
		fq.Insert(v)
	}
	if sc.Estimate() != fq.Estimate() {
		t.Fatalf("fast-query variant diverged: %v vs %v", fq.Estimate(), sc.Estimate())
	}
}
