package amstrack_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its bench) and measures the
// operation costs Theorems 2.1/2.2 assert. Each figure bench prints its
// rows once — running
//
//	go test -bench=. -benchmem .
//
// reproduces the full evaluation; per-iteration timing covers the
// estimation phase on prebuilt state, so ns/op numbers are meaningful.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"amstrack"
	"amstrack/internal/datasets"
	dist2 "amstrack/internal/dist"
	"amstrack/internal/experiments"
	"amstrack/internal/hash"
	"amstrack/internal/tablefmt"
	"amstrack/internal/xrand"
)

const benchSeed = 1

var (
	printOnceMu sync.Mutex
	printedOnce = map[string]bool{}

	figMu    sync.Mutex
	figCache = map[string]*figState{}
)

type figState struct {
	res *experiments.FigureResult
	ev  *experiments.Evaluator
}

// printOnce emits a table exactly once per benchmark name, so repeated
// calibration runs of the same benchmark do not duplicate output.
func printOnce(key, title string, t *tablefmt.Table) {
	printOnceMu.Lock()
	defer printOnceMu.Unlock()
	if printedOnce[key] {
		return
	}
	printedOnce[key] = true
	fmt.Printf("\n== %s ==\n%s\n", title, t.String())
}

func figure(b *testing.B, name string) *figState {
	b.Helper()
	figMu.Lock()
	defer figMu.Unlock()
	if st, ok := figCache[name]; ok {
		return st
	}
	spec, err := datasets.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	values, err := spec.Generate(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := experiments.NewEvaluator(values, 1<<experiments.MaxLog2SampleSize, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	res, err := experiments.RunFigure(spec, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	st := &figState{res: res, ev: ev}
	figCache[name] = st
	return st
}

// benchFigure prints the figure's rows once and times one full sweep of
// estimates (15 sizes × 3 algorithms) on the prebuilt evaluator.
func benchFigure(b *testing.B, name string) {
	st := figure(b, name)
	title := fmt.Sprintf("Figure %d: %s (n=%d, t=%d, SJ=%s)",
		st.res.Figure, name, st.res.Dataset.Length, st.res.Dataset.Domain,
		tablefmt.FormatFloat(st.res.ActualSJ))
	printOnce(b.Name(), title, st.res.Table())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lg := 0; lg <= experiments.MaxLog2SampleSize; lg++ {
			s := 1 << lg
			for _, a := range experiments.Algos() {
				if _, err := st.ev.Estimate(a, s, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkTable1_Datasets(b *testing.B) {
	t, err := experiments.Table1(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), "Table 1: data sets and their characteristics (paper vs measured)", t)
	spec, err := datasets.ByName("mf2") // smallest set: time generation+measure
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Measure(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02_Zipf1_0(b *testing.B)     { benchFigure(b, "zipf1.0") }
func BenchmarkFig03_Zipf1_5(b *testing.B)     { benchFigure(b, "zipf1.5") }
func BenchmarkFig04_Uniform(b *testing.B)     { benchFigure(b, "uniform") }
func BenchmarkFig05_MF2(b *testing.B)         { benchFigure(b, "mf2") }
func BenchmarkFig06_MF3(b *testing.B)         { benchFigure(b, "mf3") }
func BenchmarkFig07_SelfSimilar(b *testing.B) { benchFigure(b, "selfsimilar") }
func BenchmarkFig08_Poisson(b *testing.B)     { benchFigure(b, "poisson") }
func BenchmarkFig09_Wuther(b *testing.B)      { benchFigure(b, "wuther") }
func BenchmarkFig10_Genesis(b *testing.B)     { benchFigure(b, "genesis") }
func BenchmarkFig11_Brown2(b *testing.B)      { benchFigure(b, "brown2") }
func BenchmarkFig12_Xout1(b *testing.B)       { benchFigure(b, "xout1") }
func BenchmarkFig13_Yout1(b *testing.B)       { benchFigure(b, "yout1") }
func BenchmarkFig14_Path(b *testing.B)        { benchFigure(b, "path") }

func BenchmarkFig15_Robustness(b *testing.B) {
	res, err := experiments.RunFig15(1024, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), "Figure 15: robustness of estimators Xij (zipf1.5, 1024 sorted estimators)", res.Table())
	s := res.Summary()
	printOnceMu.Lock()
	if !printedOnce[b.Name()+"/summary"] {
		printedOnce[b.Name()+"/summary"] = true
		fmt.Printf("fig15 summary: median=%.3f min=%.3f max=%.3f within±50%%=%.1f%%\n\n",
			s.MedianNormalized, s.MinNormalized, s.MaxNormalized, 100*s.FracWithin50Pct)
	}
	printOnceMu.Unlock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Summary()
	}
}

func BenchmarkConvergenceTable(b *testing.B) {
	// Reuses the cached figures; builds any not yet materialized.
	var figs []*experiments.FigureResult
	for _, spec := range datasets.SortedByFigure() {
		figs = append(figs, figure(b, spec.Name).res)
	}
	conv := experiments.RunConvergence(figs, 0.15)
	printOnce(b.Name(), "§3.1: minimum sample size within 15% relative error", conv.Table())
	printOnceMu.Lock()
	if !printedOnce[b.Name()+"/summary"] {
		printedOnce[b.Name()+"/summary"] = true
		fmt.Printf("geometric mean factor sample-count/tug-of-war: %.1f\n", conv.MeanAdvantage(experiments.TugOfWar, experiments.SampleCount))
		fmt.Printf("geometric mean factor naive-sampling/tug-of-war: %.1f\n\n", conv.MeanAdvantage(experiments.TugOfWar, experiments.NaiveSampling))
	}
	printOnceMu.Unlock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunConvergence(figs, 0.15)
	}
}

func BenchmarkSection44_Comparison(b *testing.B) {
	res, err := experiments.RunSection44(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), "§4.4: analytical comparison of join signature schemes", res.Table())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Table()
	}
}

func BenchmarkLemma23_NaiveLB(b *testing.B) {
	res, err := experiments.RunLemma23(40000, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), "Lemma 2.3: naive-sampling lower bound (n=40000, √n=200)", res.Table())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLemma23(4000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem43_SignatureLB(b *testing.B) {
	res, err := experiments.RunTheorem43(2000, 80000, []int{4, 16, 50, 200, 800, 2000}, 40, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), fmt.Sprintf("Theorem 4.3: separating join size B from 2B (n=%d, B=%d, critical n²/B=%.0f words)", res.N, res.B, res.CriticalW), res.Table())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTheorem43(500, 5000, []int{50}, 4, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinSignatureAccuracy(b *testing.B) {
	res, err := experiments.RunJoinAccuracy([]int{16, 64, 256, 1024, 4096}, 3, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), "§4.3/§5: k-TW vs sampling join signatures at equal memory (mean relerr, 3 trials)", res.Table())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunJoinAccuracy([]int{16}, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeletionTracking(b *testing.B) {
	res, err := experiments.RunDeletions(
		[]string{"zipf1.0", "uniform", "selfsimilar", "genesis"},
		[]float64{0, 0.1, 0.25}, 1024, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b.Name(), "Tracking accuracy under deletions (streaming trackers, s=1024 words)", res.Table())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDeletions([]string{"mf2"}, []float64{0.2}, 64, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Operation-cost benchmarks (Theorems 2.1 and 2.2 time bounds) ----

// Tug-of-war updates are O(s): ns/op must scale linearly with s. The
// s1=1024,s2=16 run is the flat baseline for BenchmarkUpdateFastTugOfWar's
// matching sub-benchmark (the Fast-AMS acceptance comparison).
func BenchmarkUpdateTugOfWar(b *testing.B) {
	for _, s := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			tw, err := amstrack.NewTugOfWar(amstrack.Config{S1: s / 8, S2: 8, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			r := xrand.New(2)
			vals := make([]uint64, 1<<14)
			for i := range vals {
				vals[i] = r.Uint64n(1 << 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tw.Insert(vals[i&(1<<14-1)])
			}
		})
	}
	b.Run("s1=1024,s2=16", func(b *testing.B) {
		tw, err := amstrack.NewTugOfWar(amstrack.Config{S1: 1024, S2: 16, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r := xrand.New(2)
		vals := make([]uint64, 1<<14)
		for i := range vals {
			vals[i] = r.Uint64n(1 << 16)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tw.Insert(vals[i&(1<<14-1)])
		}
	})
}

// Fast-AMS updates are O(S2), independent of S1: ns/op must stay flat as
// s (and with it S1) grows, and at the acceptance config S1=1024, S2=16 it
// must beat the flat sketch's matching sub-benchmark by ≥ 10×.
func BenchmarkUpdateFastTugOfWar(b *testing.B) {
	for _, s := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			ft, err := amstrack.NewFastTugOfWar(amstrack.Config{S1: s / 8, S2: 8, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			r := xrand.New(2)
			vals := make([]uint64, 1<<14)
			for i := range vals {
				vals[i] = r.Uint64n(1 << 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft.Insert(vals[i&(1<<14-1)])
			}
		})
	}
	b.Run("s1=1024,s2=16", func(b *testing.B) {
		ft, err := amstrack.NewFastTugOfWar(amstrack.Config{S1: 1024, S2: 16, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r := xrand.New(2)
		vals := make([]uint64, 1<<14)
		for i := range vals {
			vals[i] = r.Uint64n(1 << 16)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ft.Insert(vals[i&(1<<14-1)])
		}
	})
}

// Batch ingestion: whole-slice updates amortize per-call overhead and keep
// each row's tables cache-resident (fast) or aggregate duplicates (flat).
// BenchmarkUpdateTWSignature is the flat §4.3 join signature's streamed
// update: O(k) hash evaluations per tuple. The k=1024 run is the baseline
// for BenchmarkUpdateFastTWSignature's headline (the engine acceptance
// criterion: ≥ 10x at equal memory).
func BenchmarkUpdateTWSignature(b *testing.B) {
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			fam, err := amstrack.NewSignatureFamily(k, 1)
			if err != nil {
				b.Fatal(err)
			}
			sig := fam.NewSignature()
			r := xrand.New(2)
			vals := make([]uint64, 1<<14)
			for i := range vals {
				vals[i] = r.Uint64n(1 << 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sig.Insert(vals[i&(1<<14-1)])
			}
		})
	}
}

// BenchmarkUpdateFastTWSignature is the bucketed signature at the same
// total sizes (8 rows): one hash evaluation and one counter touch per
// row, independent of k.
func BenchmarkUpdateFastTWSignature(b *testing.B) {
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			fam, err := amstrack.NewFastSignatureFamily(k/8, 8, 1)
			if err != nil {
				b.Fatal(err)
			}
			sig := fam.NewSignature()
			r := xrand.New(2)
			vals := make([]uint64, 1<<14)
			for i := range vals {
				vals[i] = r.Uint64n(1 << 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sig.Insert(vals[i&(1<<14-1)])
			}
		})
	}
}

// BenchmarkEngineIngest streams single-value inserts through a full
// engine relation (signature + sketch + sharding), the per-tuple cost an
// amsd deployment pays — for both ingest modes, at 1, 4, and GOMAXPROCS
// concurrent writers, on uniform and zipf(1.2) keys. The absorber mode's
// acceptance bar is ≥4x single-writer throughput over locked and
// near-linear multi-writer scaling; the skewed keys check that hot
// values cannot re-serialize the pipeline the way they serialize
// value-hashed shard locks. Timing includes the final Drain, so staged
// ops cannot flatter absorber numbers.
func BenchmarkEngineIngest(b *testing.B) {
	nCPU := runtime.GOMAXPROCS(0)
	writerCounts := []int{1, 4}
	if nCPU != 1 && nCPU != 4 {
		writerCounts = append(writerCounts, nCPU)
	}
	valuesFor := func(dist string, worker int) []uint64 {
		vals := make([]uint64, 1<<14)
		switch dist {
		case "uniform":
			r := xrand.New(uint64(2 + worker))
			for i := range vals {
				vals[i] = r.Uint64n(1 << 16)
			}
		case "zipf":
			z, err := dist2.NewZipf(1.2, 1<<16, uint64(2+worker))
			if err != nil {
				b.Fatal(err)
			}
			for i := range vals {
				vals[i] = z.Next()
			}
		}
		return vals
	}
	for _, mode := range []struct {
		name string
		mode amstrack.IngestMode
	}{{"locked", amstrack.IngestLocked}, {"absorber", amstrack.IngestAbsorber}} {
		for _, wal := range []string{"mem", "wal"} {
			for _, writers := range writerCounts {
				for _, dist := range []string{"uniform", "zipf"} {
					b.Run(fmt.Sprintf("mode=%s/log=%s/writers=%d/%s", mode.name, wal, writers, dist), func(b *testing.B) {
						opts := amstrack.EngineOptions{
							SignatureWords: 1024, Seed: 1, IngestMode: mode.mode,
						}
						var (
							eng *amstrack.Engine
							err error
						)
						if wal == "wal" {
							opts.Dir = b.TempDir()
							eng, err = amstrack.OpenEngine(opts)
						} else {
							eng, err = amstrack.NewEngine(opts)
						}
						if err != nil {
							b.Fatal(err)
						}
						defer eng.Close()
						rel, err := eng.Define("r")
						if err != nil {
							b.Fatal(err)
						}
						streams := make([][]uint64, writers)
						for w := range streams {
							streams[w] = valuesFor(dist, w)
						}
						b.ResetTimer()
						var wg sync.WaitGroup
						for w := 0; w < writers; w++ {
							n := b.N / writers
							if w == 0 {
								n += b.N % writers
							}
							wg.Add(1)
							go func(vals []uint64, n int) {
								defer wg.Done()
								for i := 0; i < n; i++ {
									rel.Insert(vals[i&(1<<14-1)])
								}
							}(streams[w], n)
						}
						wg.Wait()
						if err := rel.Drain(); err != nil {
							b.Fatal(err)
						}
					})
				}
			}
		}
	}
}

func BenchmarkUpdateFastTugOfWarBatch(b *testing.B) {
	ft, err := amstrack.NewFastTugOfWar(amstrack.Config{S1: 1024, S2: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(2)
	vals := make([]uint64, 1<<14)
	for i := range vals {
		vals[i] = r.Uint64n(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += len(vals) {
		ft.InsertBatch(vals)
	}
}

func BenchmarkUpdateTugOfWarBatch(b *testing.B) {
	tw, err := amstrack.NewTugOfWar(amstrack.Config{S1: 512, S2: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(2)
	vals := make([]uint64, 1<<14)
	for i := range vals {
		vals[i] = r.Uint64n(1 << 12) // duplicate-heavy: aggregation pays off
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += len(vals) {
		tw.InsertBatch(vals)
	}
}

// Parallel ingest throughput of the sharded fast sketch.
func BenchmarkUpdateShardedFastTugOfWar(b *testing.B) {
	st, err := amstrack.NewShardedFastTugOfWar(amstrack.Config{S1: 1024, S2: 16, Seed: 1}, 0)
	if err != nil {
		b.Fatal(err)
	}
	var worker atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(worker.Add(1))
		for pb.Next() {
			st.Insert(r.Uint64n(1 << 16))
		}
	})
}

// Sample-count updates are O(1) amortized: ns/op must stay flat in s.
func BenchmarkUpdateSampleCount(b *testing.B) {
	for _, s := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			sc, err := amstrack.NewSampleCount(amstrack.Config{S1: s / 8, S2: 8, Seed: 1}, amstrack.WithWindowFromStart())
			if err != nil {
				b.Fatal(err)
			}
			r := xrand.New(2)
			vals := make([]uint64, 1<<14)
			for i := range vals {
				vals[i] = r.Uint64n(1 << 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Insert(vals[i&(1<<14-1)])
			}
		})
	}
}

func BenchmarkUpdateNaiveSample(b *testing.B) {
	ns, err := amstrack.NewNaiveSample(amstrack.Config{S1: 512, S2: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(2)
	vals := make([]uint64, 1<<14)
	for i := range vals {
		vals[i] = r.Uint64n(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns.Insert(vals[i&(1<<14-1)])
	}
}

func BenchmarkQuerySelfJoin(b *testing.B) {
	const s = 4096
	r := xrand.New(3)
	feed := func(tr amstrack.Tracker) {
		rr := xrand.New(5)
		for i := 0; i < 200000; i++ {
			tr.Insert(rr.Uint64n(1 << 12))
		}
	}
	_ = r
	b.Run("tug-of-war", func(b *testing.B) {
		tw, _ := amstrack.NewTugOfWar(amstrack.Config{S1: s / 8, S2: 8, Seed: 1})
		feed(tw)
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += tw.Estimate()
		}
		_ = sink
	})
	b.Run("sample-count", func(b *testing.B) {
		sc, _ := amstrack.NewSampleCount(amstrack.Config{S1: s / 8, S2: 8, Seed: 1}, amstrack.WithWindowFromStart())
		feed(sc)
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += sc.Estimate()
		}
		_ = sink
	})
	b.Run("naive-sampling", func(b *testing.B) {
		ns, _ := amstrack.NewNaiveSample(amstrack.Config{S1: s / 8, S2: 8, Seed: 1})
		feed(ns)
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += ns.Estimate()
		}
		_ = sink
	})
}

func BenchmarkJoinSignatureOps(b *testing.B) {
	fam, err := amstrack.NewSignatureFamily(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("insert-k256", func(b *testing.B) {
		sig := fam.NewSignature()
		for i := 0; i < b.N; i++ {
			sig.Insert(uint64(i & 4095))
		}
	})
	b.Run("estimate-k256", func(b *testing.B) {
		x, y := fam.NewSignature(), fam.NewSignature()
		r := xrand.New(1)
		for i := 0; i < 50000; i++ {
			x.Insert(r.Uint64n(1000))
			y.Insert(r.Uint64n(1000))
		}
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			est, err := amstrack.EstimateJoin(x, y)
			if err != nil {
				b.Fatal(err)
			}
			sink += est
		}
		_ = sink
	})
}

// BenchmarkAblationHashIndependence quantifies why the paper insists on
// four-wise independence: it prints the mean relative error of the F2
// estimator under the 4-wise polynomial family versus the 2-wise (affine)
// family at equal sketch size, on a skewed input where pairwise
// independence is not enough for the variance bound.
func BenchmarkAblationHashIndependence(b *testing.B) {
	r := xrand.New(17)
	values := make([]uint64, 100000)
	for i := range values {
		values[i] = r.Uint64n(64) * 3571 // few heavy values, scattered
	}
	freq := map[uint64]int64{}
	for _, v := range values {
		freq[v]++
	}
	var sj float64
	for _, f := range freq {
		sj += float64(f) * float64(f)
	}
	const s = 64
	const trials = 200
	measure := func(fourWise bool) float64 {
		totErr := 0.0
		for trial := 0; trial < trials; trial++ {
			sum := 0.0
			for k := 0; k < s; k++ {
				seed := xrand.Mix64(uint64(trial)<<20 ^ uint64(k))
				var z int64
				if fourWise {
					fn := hash.NewFourWise(seed)
					for v, f := range freq {
						z += fn.Sign(v) * f
					}
				} else {
					fn := hash.NewTwoWise(seed)
					for v, f := range freq {
						z += fn.Sign(v) * f
					}
				}
				sum += float64(z) * float64(z)
			}
			est := sum / s
			if est > sj {
				totErr += (est - sj) / sj
			} else {
				totErr += (sj - est) / sj
			}
		}
		return totErr / trials
	}
	printOnceMu.Lock()
	if !printedOnce[b.Name()] {
		printedOnce[b.Name()] = true
		t := tablefmt.New("family", "mean relerr at s=64")
		t.AddRow("4-wise (paper)", measure(true))
		t.AddRow("2-wise (ablation)", measure(false))
		fmt.Printf("\n== Ablation: hash independence for tug-of-war ==\n%s\n", t.String())
	}
	printOnceMu.Unlock()
	b.ResetTimer()
	fn := hash.NewFourWise(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += fn.Sign(uint64(i))
	}
	_ = sink
}
